package broker

import (
	"sync"
	"sync/atomic"

	"github.com/ifot-middleware/ifot/internal/wire"
)

// maxQueuedOffline bounds the per-session offline message queue for
// persistent sessions; the oldest messages are dropped first on overflow.
const maxQueuedOffline = 1000

// outPacket is one queued outbound item: either a packet encoded at write
// time, or a pre-encoded frame shared read-only across the subscribers of
// one publish (the broker's encode-once QoS0 fan-out).
type outPacket struct {
	pkt   wire.Packet // nil when frame is set
	frame []byte      // full wire frame; must not be mutated
}

// session holds the broker-side state for one client identifier. For
// persistent sessions (CleanSession=false) the object outlives the network
// connection; for clean sessions it is discarded on disconnect.
type session struct {
	clientID   string
	persistent bool

	mu        sync.Mutex
	connected bool
	outbound  chan outPacket // non-nil while connected
	attachGen uint64         // increments per (re)connection

	// fastOut mirrors outbound for the lock-free QoS0 frame path: non-nil
	// exactly while connected, maintained by attach/detach under mu. The
	// channel itself is never closed (the connection writer exits on a
	// sentinel), so a racing lock-free send can at worst land in an
	// abandoned buffer, never panic.
	fastOut atomic.Pointer[chan outPacket]

	// subscriptions mirrors the trie entries owned by this session so
	// they can be reported and cleaned up.
	subscriptions map[string]wire.QoS

	// inflight holds QoS1 messages sent to the client but not yet acked,
	// keyed by packet ID; they are resent (Dup) on reconnect.
	inflight map[uint16]*wire.PublishPacket
	// queued holds QoS1 messages that arrived while a persistent session
	// was offline.
	queued []*wire.PublishPacket
	// incomingQoS2 tracks QoS2 publishes received from the client whose
	// PUBREL is still pending, to suppress redelivery duplicates.
	incomingQoS2 map[uint16]struct{}

	nextPacketID uint16

	// droppedMessages is atomic so Stats and metrics scrapes read it
	// without taking s.mu — a stats tick never contends with deliveries.
	droppedMessages atomic.Int64

	// persist, when non-nil, journals this session's QoS1 window to the
	// broker's WAL. Packet IDs are per-connection, so durable messages
	// are keyed by a broker-wide message ID instead: inflightIDs maps
	// packet ID → message ID and queuedIDs parallels queued. Both are
	// populated only for persistent sessions with persistence on; the
	// QoS0 path never touches them.
	persist     *persister
	inflightIDs map[uint16]uint64
	queuedIDs   []uint64
}

func newSession(clientID string, persistent bool) *session {
	return &session{
		clientID:      clientID,
		persistent:    persistent,
		subscriptions: make(map[string]wire.QoS),
		inflight:      make(map[uint16]*wire.PublishPacket),
		incomingQoS2:  make(map[uint16]struct{}),
		inflightIDs:   make(map[uint16]uint64),
	}
}

// attach binds a new connection's outbound queue to the session and returns
// the packets that must be (re)sent: unacked inflight messages first (with
// DUP set), then queued offline messages (now given packet IDs).
func (s *session) attach(queueSize int) (outbound chan outPacket, resend []*wire.PublishPacket, gen uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.connected = true
	s.attachGen++
	s.outbound = make(chan outPacket, queueSize)
	ch := s.outbound
	s.fastOut.Store(&ch)

	resend = make([]*wire.PublishPacket, 0, len(s.inflight)+len(s.queued))
	for _, p := range s.inflight {
		dup := *p
		dup.Dup = true
		resend = append(resend, &dup)
	}
	for i, p := range s.queued {
		p.PacketID = s.allocPacketIDLocked()
		s.inflight[p.PacketID] = p
		if s.durableLocked() && i < len(s.queuedIDs) {
			s.inflightIDs[p.PacketID] = s.queuedIDs[i]
		}
		resend = append(resend, p)
	}
	s.queued = nil
	s.queuedIDs = nil
	return s.outbound, resend, s.attachGen
}

// durableLocked reports whether this session's QoS1 window is journaled.
func (s *session) durableLocked() bool { return s.persist != nil && s.persistent }

// detach marks the session disconnected. It only takes effect if gen still
// identifies the current attachment (a stale detach from a taken-over
// connection must not disconnect the successor).
func (s *session) detach(gen uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attachGen != gen {
		return
	}
	s.connected = false
	s.outbound = nil
	s.fastOut.Store(nil)
}

// deliver routes an application message to the client. Connected sessions
// get it on the outbound queue (dropped if the queue is full and the
// message is QoS0). Offline persistent sessions queue QoS1 messages.
// It reports whether the message was accepted.
func (s *session) deliver(p *wire.PublishPacket) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.connected {
		if p.QoS > wire.QoS0 {
			p.PacketID = s.allocPacketIDLocked()
			s.inflight[p.PacketID] = p
			if s.durableLocked() {
				// Journaled under s.mu: WAL order = window order.
				s.inflightIDs[p.PacketID] = s.persist.noteQueued(s.clientID, p)
			}
		}
		select {
		case s.outbound <- outPacket{pkt: p}:
			return true
		default:
			s.droppedMessages.Add(1)
			if p.QoS > wire.QoS0 {
				// Stays in inflight; it will be retried on reconnect.
				delete(s.inflight, p.PacketID)
				id := s.inflightIDs[p.PacketID]
				delete(s.inflightIDs, p.PacketID)
				s.queueOfflineLocked(p, id)
			}
			return false
		}
	}
	if s.persistent && p.QoS > wire.QoS0 {
		var id uint64
		if s.durableLocked() {
			id = s.persist.noteQueued(s.clientID, p)
		}
		s.queueOfflineLocked(p, id)
		return true
	}
	return false
}

// deliverFrame routes a pre-encoded QoS0 application frame to a connected
// client. QoS0 messages are never queued offline, so a disconnected (or
// saturated) session just reports the drop. The path is lock-free: the
// outbound channel rides fastOut, so the fan-out loop costs one atomic
// load plus a non-blocking channel send per subscriber — no session mutex.
// A send racing a disconnect can land in the just-abandoned buffer (the
// frame is simply garbage-collected with it); QoS0 tolerates that, and
// the QoS1 path keeps the mutex for its inflight-window bookkeeping.
func (s *session) deliverFrame(frame []byte) bool {
	ch := s.fastOut.Load()
	if ch == nil {
		return false
	}
	select {
	case *ch <- outPacket{frame: frame}:
		return true
	default:
		s.droppedMessages.Add(1)
		return false
	}
}

// queueOfflineLocked parks a QoS1 message (with its durable message ID,
// zero when persistence is off) until reconnect, dropping the oldest on
// overflow — and journaling that drop as an ack so replay agrees.
func (s *session) queueOfflineLocked(p *wire.PublishPacket, msgID uint64) {
	if len(s.queued) >= maxQueuedOffline {
		if s.durableLocked() && len(s.queuedIDs) > 0 {
			s.persist.noteAcked(s.clientID, s.queuedIDs[0])
			copy(s.queuedIDs, s.queuedIDs[1:])
			s.queuedIDs = s.queuedIDs[:len(s.queuedIDs)-1]
		}
		copy(s.queued, s.queued[1:])
		s.queued = s.queued[:len(s.queued)-1]
		s.droppedMessages.Add(1)
	}
	s.queued = append(s.queued, p)
	if s.durableLocked() {
		s.queuedIDs = append(s.queuedIDs, msgID)
	}
}

// send enqueues a control packet (acks, pings) for the connected client.
func (s *session) send(p wire.Packet) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.connected {
		return false
	}
	select {
	case s.outbound <- outPacket{pkt: p}:
		return true
	default:
		s.droppedMessages.Add(1)
		return false
	}
}

// ack removes a client-acknowledged QoS1 message from the inflight window.
func (s *session) ack(packetID uint16) {
	s.mu.Lock()
	delete(s.inflight, packetID)
	if id, ok := s.inflightIDs[packetID]; ok {
		delete(s.inflightIDs, packetID)
		if s.durableLocked() {
			s.persist.noteAcked(s.clientID, id)
		}
	}
	s.mu.Unlock()
}

// markIncomingQoS2 records an incoming QoS2 publish. It reports true if the
// packet ID is new (message should be delivered) or false for a duplicate.
func (s *session) markIncomingQoS2(packetID uint16) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.incomingQoS2[packetID]; dup {
		return false
	}
	s.incomingQoS2[packetID] = struct{}{}
	return true
}

// releaseIncomingQoS2 completes the QoS2 receive handshake for packetID.
func (s *session) releaseIncomingQoS2(packetID uint16) {
	s.mu.Lock()
	delete(s.incomingQoS2, packetID)
	s.mu.Unlock()
}

func (s *session) addSubscription(filter string, qos wire.QoS) {
	s.mu.Lock()
	s.subscriptions[filter] = qos
	s.mu.Unlock()
}

func (s *session) removeSubscription(filter string) {
	s.mu.Lock()
	delete(s.subscriptions, filter)
	s.mu.Unlock()
}

func (s *session) subscriptionList() map[string]wire.QoS {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]wire.QoS, len(s.subscriptions))
	for f, q := range s.subscriptions {
		out[f] = q
	}
	return out
}

// dropped reports this session's cumulative drop count; lock-free so a
// stats scrape never touches the delivery mutex.
func (s *session) dropped() int64 { return s.droppedMessages.Load() }

// allocPacketIDLocked returns the next free nonzero packet identifier.
func (s *session) allocPacketIDLocked() uint16 {
	for {
		s.nextPacketID++
		if s.nextPacketID == 0 {
			s.nextPacketID = 1
		}
		if _, used := s.inflight[s.nextPacketID]; !used {
			return s.nextPacketID
		}
	}
}
