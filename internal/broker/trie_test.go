package broker

import (
	"testing"

	"github.com/ifot-middleware/ifot/internal/wire"
)

func ids(subs []*subscriber) map[string]wire.QoS {
	out := make(map[string]wire.QoS, len(subs))
	for _, s := range subs {
		out[s.session.clientID] = s.qos
	}
	return out
}

func TestTrieExactMatch(t *testing.T) {
	tr := newSubTrie()
	s := newSession("c1", false)
	tr.subscribe("a/b/c", s, wire.QoS1)

	got := ids(tr.match("a/b/c"))
	if got["c1"] != wire.QoS1 || len(got) != 1 {
		t.Fatalf("match(a/b/c) = %v, want c1@QoS1", got)
	}
	if len(tr.match("a/b/d")) != 0 {
		t.Fatal("match(a/b/d) matched a non-subscriber")
	}
	if len(tr.match("a/b")) != 0 {
		t.Fatal("match(a/b) matched a longer filter")
	}
}

func TestTrieWildcards(t *testing.T) {
	tr := newSubTrie()
	plus := newSession("plus", false)
	hash := newSession("hash", false)
	tr.subscribe("sensor/+/temp", plus, wire.QoS0)
	tr.subscribe("sensor/#", hash, wire.QoS1)

	got := ids(tr.match("sensor/room1/temp"))
	if len(got) != 2 {
		t.Fatalf("match = %v, want both subscribers", got)
	}
	got = ids(tr.match("sensor/room1/humidity"))
	if len(got) != 1 || got["hash"] != wire.QoS1 {
		t.Fatalf("match = %v, want only hash", got)
	}
	// '#' matches the parent level.
	got = ids(tr.match("sensor"))
	if len(got) != 1 || got["hash"] != wire.QoS1 {
		t.Fatalf("match(sensor) = %v, want only hash", got)
	}
}

func TestTrieOverlappingFiltersHighestQoSWins(t *testing.T) {
	tr := newSubTrie()
	s := newSession("c", false)
	tr.subscribe("a/#", s, wire.QoS0)
	tr.subscribe("a/b", s, wire.QoS1)

	subs := tr.match("a/b")
	if len(subs) != 1 {
		t.Fatalf("match returned %d entries, want deduplicated 1", len(subs))
	}
	if subs[0].qos != wire.QoS1 {
		t.Fatalf("granted QoS = %v, want QoS1 (highest of overlapping)", subs[0].qos)
	}
}

func TestTrieUnsubscribe(t *testing.T) {
	tr := newSubTrie()
	s := newSession("c", false)
	tr.subscribe("a/b", s, wire.QoS0)
	if !tr.unsubscribe("a/b", "c") {
		t.Fatal("unsubscribe reported missing subscription")
	}
	if tr.unsubscribe("a/b", "c") {
		t.Fatal("second unsubscribe reported success")
	}
	if len(tr.match("a/b")) != 0 {
		t.Fatal("match found removed subscription")
	}
	if got := tr.countSubscriptions(); got != 0 {
		t.Fatalf("countSubscriptions = %d, want 0", got)
	}
}

func TestTrieRemoveAll(t *testing.T) {
	tr := newSubTrie()
	a := newSession("a", false)
	b := newSession("b", false)
	tr.subscribe("x/1", a, wire.QoS0)
	tr.subscribe("x/2", a, wire.QoS0)
	tr.subscribe("x/1", b, wire.QoS0)

	tr.removeAll("a")
	if got := tr.countSubscriptions(); got != 1 {
		t.Fatalf("countSubscriptions = %d, want 1", got)
	}
	got := ids(tr.match("x/1"))
	if len(got) != 1 || got["b"] != wire.QoS0 {
		t.Fatalf("match(x/1) = %v, want only b", got)
	}
}

func TestTrieDollarTopicsNotMatchedByWildcards(t *testing.T) {
	tr := newSubTrie()
	s := newSession("c", false)
	tr.subscribe("#", s, wire.QoS0)
	tr.subscribe("+/x", s, wire.QoS0)
	if len(tr.match("$SYS/x")) != 0 {
		t.Fatal("wildcard filter matched $-prefixed topic")
	}

	tr.subscribe("$SYS/x", s, wire.QoS0)
	if len(tr.match("$SYS/x")) != 1 {
		t.Fatal("exact filter failed to match $-prefixed topic")
	}
}

func TestTrieResubscribeReplacesQoS(t *testing.T) {
	tr := newSubTrie()
	s := newSession("c", false)
	tr.subscribe("a", s, wire.QoS0)
	tr.subscribe("a", s, wire.QoS1)
	subs := tr.match("a")
	if len(subs) != 1 || subs[0].qos != wire.QoS1 {
		t.Fatalf("resubscribe: got %d subs qos=%v, want 1 sub at QoS1", len(subs), subs[0].qos)
	}
	if got := tr.countSubscriptions(); got != 1 {
		t.Fatalf("countSubscriptions = %d, want 1", got)
	}
}

func TestTrieEmptyLevels(t *testing.T) {
	tr := newSubTrie()
	s := newSession("c", false)
	tr.subscribe("a//b", s, wire.QoS0)
	if len(tr.match("a//b")) != 1 {
		t.Fatal("empty-level filter did not match identical topic")
	}
	if len(tr.match("a/b")) != 0 {
		t.Fatal("empty-level filter matched collapsed topic")
	}
}
