package broker

import (
	"fmt"
	"testing"
	"time"

	"github.com/ifot-middleware/ifot/internal/mqttclient"
	"github.com/ifot-middleware/ifot/internal/netsim"
	"github.com/ifot-middleware/ifot/internal/store"
	"github.com/ifot-middleware/ifot/internal/wire"
)

// openBus starts a broker backed by st with an in-memory listener. Unlike
// newTestBus it does not register cleanup closes — restart tests manage
// broker lifecycle explicitly.
func openBus(t *testing.T, st store.Store) *testBus {
	t.Helper()
	b, err := Open(Options{Store: st})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	l := netsim.NewPipeListener()
	go func() { _ = b.Serve(l) }()
	return &testBus{broker: b, listener: l}
}

func persistentOpts(clientID string) mqttclient.Options {
	o := mqttclient.NewOptions(clientID)
	o.CleanSession = false
	return o
}

func TestPersistRetainedAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	bus := openBus(t, st)
	pub := bus.connect(t, mqttclient.NewOptions("pub"))
	for i := 0; i < 5; i++ {
		if err := pub.Publish(fmt.Sprintf("cfg/%d", i), []byte(fmt.Sprintf("v%d", i)), wire.QoS1, true); err != nil {
			t.Fatal(err)
		}
	}
	// Retained delete must also survive.
	if err := pub.Publish("cfg/1", nil, wire.QoS1, true); err != nil {
		t.Fatal(err)
	}
	_ = pub.Close()
	_ = bus.broker.Close()
	_ = bus.listener.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	bus2 := openBus(t, st2)
	defer func() { _ = bus2.broker.Close(); _ = bus2.listener.Close(); _ = st2.Close() }()

	if got := bus2.broker.Stats().RetainedMessages; got != 4 {
		t.Fatalf("retained after restart = %d, want 4", got)
	}
	sub := bus2.connect(t, mqttclient.NewOptions("sub"))
	msgs := make(chan mqttclient.Message, 8)
	if _, err := sub.Subscribe("cfg/#", wire.QoS0, func(m mqttclient.Message) { msgs <- m }); err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	for len(seen) < 4 {
		select {
		case m := <-msgs:
			if !m.Retain {
				t.Fatalf("replayed message %q not marked retained", m.Topic)
			}
			seen[m.Topic] = string(m.Payload)
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out; got %v", seen)
		}
	}
	if _, ok := seen["cfg/1"]; ok {
		t.Fatal("deleted retained message came back")
	}
	for _, i := range []int{0, 2, 3, 4} {
		if seen[fmt.Sprintf("cfg/%d", i)] != fmt.Sprintf("v%d", i) {
			t.Fatalf("retained payloads after restart: %v", seen)
		}
	}
}

func TestPersistSubscriptionsAndQueuedQoS1AcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	bus := openBus(t, st)

	// Persistent subscriber registers, then goes offline.
	sub := bus.connect(t, persistentOpts("durable-sub"))
	if _, err := sub.Subscribe("jobs/#", wire.QoS1, func(mqttclient.Message) {}); err != nil {
		t.Fatal(err)
	}
	_ = sub.Close()
	waitFor(t, "subscriber detach", func() bool { return bus.broker.Stats().ConnectedClients == 0 })

	// Messages published while it is offline must be queued durably.
	pub := bus.connect(t, mqttclient.NewOptions("pub"))
	for i := 0; i < 3; i++ {
		if err := pub.Publish(fmt.Sprintf("jobs/%d", i), []byte(fmt.Sprintf("job%d", i)), wire.QoS1, false); err != nil {
			t.Fatal(err)
		}
	}
	_ = pub.Close()
	_ = bus.broker.Close()
	_ = bus.listener.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the session, its subscription, and its queue must be back.
	st2, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	bus2 := openBus(t, st2)
	defer func() { _ = bus2.broker.Close(); _ = bus2.listener.Close(); _ = st2.Close() }()

	stats := bus2.broker.Stats()
	if stats.Sessions != 1 || stats.Subscriptions != 1 {
		t.Fatalf("after restart: %+v, want 1 session + 1 subscription", stats)
	}

	msgs := make(chan mqttclient.Message, 8)
	opts := persistentOpts("durable-sub")
	opts.DefaultHandler = func(m mqttclient.Message) { msgs <- m }
	c := bus2.connect(t, opts)
	defer c.Close()
	got := map[string]string{}
	for len(got) < 3 {
		select {
		case m := <-msgs:
			if m.QoS != wire.QoS1 {
				t.Fatalf("queued message %q delivered at QoS %v", m.Topic, m.QoS)
			}
			got[m.Topic] = string(m.Payload)
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out; got %v", got)
		}
	}
	for i := 0; i < 3; i++ {
		if got[fmt.Sprintf("jobs/%d", i)] != fmt.Sprintf("job%d", i) {
			t.Fatalf("queued payloads after restart: %v", got)
		}
	}
}

func TestPersistAckedMessagesNotRedelivered(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	bus := openBus(t, st)

	msgs := make(chan mqttclient.Message, 8)
	opts := persistentOpts("acker")
	opts.DefaultHandler = func(m mqttclient.Message) { msgs <- m }
	sub := bus.connect(t, opts)
	if _, err := sub.Subscribe("a/#", wire.QoS1, func(m mqttclient.Message) { msgs <- m }); err != nil {
		t.Fatal(err)
	}
	pub := bus.connect(t, mqttclient.NewOptions("pub"))
	if err := pub.Publish("a/1", []byte("acked"), wire.QoS1, false); err != nil {
		t.Fatal(err)
	}
	select {
	case <-msgs:
	case <-time.After(5 * time.Second):
		t.Fatal("message never arrived")
	}
	// The client PUBACKs asynchronously after the handler; wait until the
	// broker has journaled the ack (inflight window empty).
	waitFor(t, "ack journaled", func() bool {
		bus.broker.mu.RLock()
		sess := bus.broker.sessions["acker"]
		bus.broker.mu.RUnlock()
		sess.mu.Lock()
		defer sess.mu.Unlock()
		return len(sess.inflight) == 0
	})
	_ = sub.Close()
	_ = pub.Close()
	_ = bus.broker.Close()
	_ = bus.listener.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	bus2 := openBus(t, st2)
	defer func() { _ = bus2.broker.Close(); _ = bus2.listener.Close(); _ = st2.Close() }()

	redelivered := make(chan mqttclient.Message, 8)
	opts2 := persistentOpts("acker")
	opts2.DefaultHandler = func(m mqttclient.Message) { redelivered <- m }
	c := bus2.connect(t, opts2)
	defer c.Close()
	select {
	case m := <-redelivered:
		t.Fatalf("acked message redelivered after restart: %q %q", m.Topic, m.Payload)
	case <-time.After(300 * time.Millisecond):
	}
}

func TestPersistCleanSessionReconnectClearsState(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	bus := openBus(t, st)

	sub := bus.connect(t, persistentOpts("flip"))
	if _, err := sub.Subscribe("x/#", wire.QoS1, func(mqttclient.Message) {}); err != nil {
		t.Fatal(err)
	}
	_ = sub.Close()
	waitFor(t, "detach", func() bool { return bus.broker.Stats().ConnectedClients == 0 })

	// Reconnect clean: durable state for "flip" must be discarded.
	clean := bus.connect(t, mqttclient.NewOptions("flip"))
	_ = clean.Close()
	waitFor(t, "clean detach", func() bool { return bus.broker.Stats().ConnectedClients == 0 })
	_ = bus.broker.Close()
	_ = bus.listener.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Open(Options{Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b2.Close(); _ = st2.Close() }()
	stats := b2.Stats()
	if stats.Sessions != 0 || stats.Subscriptions != 0 {
		t.Fatalf("clean-session reconnect leaked durable state: %+v", stats)
	}
}

// TestPersistCrashRecovery kills the store the hard way — no flush, no
// sync, mid-traffic — and verifies the rebuilt broker serves a consistent
// prefix of the journaled state.
func TestPersistCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true, SyncDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	bus := openBus(t, st)

	sub := bus.connect(t, persistentOpts("crash-sub"))
	if _, err := sub.Subscribe("s/#", wire.QoS1, func(mqttclient.Message) {}); err != nil {
		t.Fatal(err)
	}
	_ = sub.Close()
	waitFor(t, "detach", func() bool { return bus.broker.Stats().ConnectedClients == 0 })

	pub := bus.connect(t, mqttclient.NewOptions("pub"))
	const total = 50
	for i := 0; i < total; i++ {
		if err := pub.Publish("s/evt", []byte(fmt.Sprintf("m%03d", i)), wire.QoS1, false); err != nil {
			t.Fatal(err)
		}
		if err := pub.Publish("s/state", []byte(fmt.Sprintf("r%03d", i)), wire.QoS1, true); err != nil {
			t.Fatal(err)
		}
	}
	// Give the group-commit window a moment so a non-empty prefix is on
	// disk, then pull the plug without closing the broker.
	time.Sleep(20 * time.Millisecond)
	st.Crash()
	_ = bus.broker.Close()
	_ = bus.listener.Close()

	st2, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	b2, err := Open(Options{Store: st2})
	if err != nil {
		t.Fatalf("broker recovery after crash: %v", err)
	}
	defer func() { _ = b2.Close(); _ = st2.Close() }()

	stats := b2.Stats()
	if stats.Sessions != 1 || stats.Subscriptions != 1 {
		t.Fatalf("session lost in crash: %+v", stats)
	}
	// The publisher alternated m/r publishes, both matching s/#, so the
	// recovered queue must be a strict prefix of the interleaved sequence
	// m000, r000, m001, r001, … — a crash may lose the tail but never
	// reorder or corrupt.
	var expect []string
	for i := 0; i < total; i++ {
		expect = append(expect, fmt.Sprintf("m%03d", i), fmt.Sprintf("r%03d", i))
	}
	b2.mu.RLock()
	sess := b2.sessions["crash-sub"]
	b2.mu.RUnlock()
	sess.mu.Lock()
	for i, p := range sess.queued {
		if string(p.Payload) != expect[i] {
			sess.mu.Unlock()
			t.Fatalf("queued[%d] = %q, want %q (prefix property violated)", i, p.Payload, expect[i])
		}
	}
	n := len(sess.queued)
	sess.mu.Unlock()
	if n == 0 {
		t.Fatal("crash lost everything despite group-commit window")
	}
	t.Logf("recovered %d/%d queued messages after crash", n, 2*total)
}

func TestPersistSnapshotCompactionKeepsState(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	// Tiny snapshot threshold: every few retained publishes trigger
	// compaction on the journal goroutine.
	b, err := Open(Options{Store: st, SnapshotBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		b.Publish(fmt.Sprintf("r/%d", i%10), []byte(fmt.Sprintf("payload-%d", i)), wire.QoS1, true)
	}
	waitFor(t, "snapshot compaction", func() bool {
		if snap, _ := st.LoadSnapshot(); snap != nil {
			return true
		}
		return false
	})
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Open(Options{Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b2.Close(); _ = st2.Close() }()
	if got := b2.Stats().RetainedMessages; got != 10 {
		t.Fatalf("retained after compacted restart = %d, want 10", got)
	}
	b2.retainedMu.Lock()
	defer b2.retainedMu.Unlock()
	for i := 0; i < 10; i++ {
		topic := fmt.Sprintf("r/%d", i)
		want := fmt.Sprintf("payload-%d", 190+i)
		if got := string(b2.retained[topic].payload); got != want {
			t.Fatalf("retained[%s] = %q, want %q", topic, got, want)
		}
	}
}

func TestPersistMemStoreSameContract(t *testing.T) {
	st := store.NewMemStore()
	b, err := Open(Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	b.Publish("m/1", []byte("one"), wire.QoS1, true)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	b2, err := Open(Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if got := b2.Stats().RetainedMessages; got != 1 {
		t.Fatalf("MemStore-backed restart lost retained state: %d", got)
	}
}
