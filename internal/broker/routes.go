package broker

import (
	"strings"
	"sync"
	"sync/atomic"

	"github.com/ifot-middleware/ifot/internal/wire"
)

// Epoch-published routing. The broker's publish path routes against an
// immutable routeTable snapshot published through an atomic pointer:
// subscribe/unsubscribe/session churn mutate the builder trie under
// Broker.mu, build a fresh snapshot, and swap it in under the epochGate
// writer fence. A publish read section therefore always observes the
// snapshot that is current for its entire section (the fence drains
// in-flight sections before a swap completes), which is what makes the
// epoch-keyed route cache below coherent without any locking on lookups.

// routeSub is one matched delivery target: the session and the granted
// QoS of the filter that matched.
type routeSub struct {
	session *session
	qos     wire.QoS
}

// routeTable is one immutable routing snapshot.
type routeTable struct {
	epoch    uint64
	root     *routeNode
	subCount int
}

// routeNode mirrors trieNode in immutable form: children holds only
// literal levels; the `+` and `#` wildcard children get their own fields
// so matching skips two map probes per level.
type routeNode struct {
	children map[string]*routeNode
	plus     *routeNode
	hash     *routeNode
	subs     []routeSub
}

// build converts the mutable builder trie into an immutable snapshot
// stamped with epoch. Callers hold Broker.mu, so the builder is quiescent.
func (t *subTrie) build(epoch uint64) *routeTable {
	t.mu.RLock()
	defer t.mu.RUnlock()
	root, count := buildRouteNode(t.root)
	return &routeTable{epoch: epoch, root: root, subCount: count}
}

func buildRouteNode(n *trieNode) (*routeNode, int) {
	rn := &routeNode{}
	count := len(n.subs)
	if len(n.subs) > 0 {
		rn.subs = make([]routeSub, 0, len(n.subs))
		for _, s := range n.subs {
			rn.subs = append(rn.subs, routeSub{session: s.session, qos: s.qos})
		}
	}
	for level, child := range n.children {
		c, cc := buildRouteNode(child)
		count += cc
		switch level {
		case "+":
			rn.plus = c
		case "#":
			rn.hash = c
		default:
			if rn.children == nil {
				rn.children = make(map[string]*routeNode, len(n.children))
			}
			rn.children[level] = c
		}
	}
	return rn, count
}

// matchBuf is pooled matching scratch: matched terminal nodes, a merge
// buffer, and a dedup index used only when several filters match.
type matchBuf struct {
	nodes []*routeNode
	subs  []routeSub
	seen  map[*session]int
}

var matchBufPool = sync.Pool{New: func() any { return &matchBuf{} }}

func getMatchBuf() *matchBuf { return matchBufPool.Get().(*matchBuf) }

func (mb *matchBuf) release() { matchBufPool.Put(mb) }

// match returns the subscribers whose filters match topic; one session
// matching via several filters gets its highest granted QoS (spec 3.3.5).
// The returned slice is valid until mb is released or reused: the common
// single-filter case aliases the node's immutable subs slice and the
// multi-filter case lands in mb's merge buffer — either way, zero
// allocations and no per-publish map or strings.Split.
func (t *routeTable) match(topic string, mb *matchBuf) []routeSub {
	mb.nodes = mb.nodes[:0]
	// Per spec 4.7.2, wildcard filters must not match $-prefixed topics.
	t.root.collect(topic, 0, strings.HasPrefix(topic, "$"), mb)
	switch len(mb.nodes) {
	case 0:
		return nil
	case 1:
		return mb.nodes[0].subs
	}
	return mb.merge()
}

// collect walks the topic level by level (pos indexes the current level's
// first byte; len(topic)+1 marks all levels consumed) gathering terminal
// nodes whose filters match.
func (n *routeNode) collect(topic string, pos int, skipWildcard bool, mb *matchBuf) {
	if pos > len(topic) {
		if len(n.subs) > 0 {
			mb.nodes = append(mb.nodes, n)
		}
		// "a/#" also matches "a": a child '#' at this point terminates.
		if n.hash != nil && !skipWildcard && len(n.hash.subs) > 0 {
			mb.nodes = append(mb.nodes, n.hash)
		}
		return
	}
	var level string
	var next int
	if end := strings.IndexByte(topic[pos:], '/'); end < 0 {
		level, next = topic[pos:], len(topic)+1
	} else {
		level, next = topic[pos:pos+end], pos+end+1
	}
	if child, ok := n.children[level]; ok {
		child.collect(topic, next, false, mb)
	}
	if !skipWildcard {
		if n.plus != nil {
			n.plus.collect(topic, next, false, mb)
		}
		if n.hash != nil && len(n.hash.subs) > 0 {
			mb.nodes = append(mb.nodes, n.hash)
		}
	}
}

// merge flattens multiple matched nodes, deduplicating sessions on
// highest QoS. Within one node sessions are unique by construction, so
// the map is needed only across nodes.
func (mb *matchBuf) merge() []routeSub {
	mb.subs = mb.subs[:0]
	if mb.seen == nil {
		mb.seen = make(map[*session]int, 16)
	} else {
		clear(mb.seen)
	}
	for _, n := range mb.nodes {
		for _, s := range n.subs {
			if j, ok := mb.seen[s.session]; ok {
				if s.qos > mb.subs[j].qos {
					mb.subs[j].qos = s.qos
				}
				continue
			}
			mb.seen[s.session] = len(mb.subs)
			mb.subs = append(mb.subs, s)
		}
	}
	return mb.subs
}

// --- route cache ---

// routeCache memoizes topic → matched subscriber set per snapshot epoch,
// exploiting that IFoT sensor flows republish into a small stable topic
// set. Lookups are lock-free: each shard publishes an immutable
// map[topic]*rcCell through an atomic pointer, and each cell holds an
// atomic pointer to its current value. Correctness leans on the epoch
// gate: all concurrent publish sections run against the same snapshot
// epoch (a swap fences them out first), so racing refreshes of one cell
// always store equivalent values.
type routeCache struct {
	shards [routeCacheShards]rcShard
}

const (
	routeCacheShards   = 16  // power of two; indexed by topic hash
	routeCacheShardMax = 512 // bounded: beyond this, new topics stay uncached
)

type rcShard struct {
	m  atomic.Pointer[map[string]*rcCell]
	mu sync.Mutex // serializes map-copy inserts; lookups never touch it
}

// rcCell is one topic's slot; stable across epochs so refreshes after a
// snapshot swap are a single pointer store, not a map copy.
type rcCell struct {
	v atomic.Pointer[rcVal]
}

// rcVal is one immutable cached route: the merged subscriber set for the
// topic at a given epoch, plus the topic's publish-accounting counter
// (nil for $-topics) so cache hits skip the pubMu lookup too, plus the
// topic-name validity verdict so cache hits skip re-validating the topic
// byte-by-byte before frame encoding.
type rcVal struct {
	epoch uint64
	subs  []routeSub
	tc    *topicCount
	valid bool
}

// lookup returns the cached route for topic at epoch, or nil on miss
// (absent or stale). Zero allocations, zero locks.
func (c *routeCache) lookup(topic string, epoch uint64) *rcVal {
	sh := &c.shards[rcHash(topic)&(routeCacheShards-1)]
	mp := sh.m.Load()
	if mp == nil {
		return nil
	}
	cell := (*mp)[topic]
	if cell == nil {
		return nil
	}
	v := cell.v.Load()
	if v == nil || v.epoch != epoch {
		return nil
	}
	return v
}

// store caches subs (copied) for topic at epoch and returns the owned
// copy. Refreshing an existing topic is a lock-free pointer store; a new
// topic takes the shard mutex and republishes a copied map. A full shard
// first evicts entries not republished since the last epoch swap; if
// every entry is live, the new topic simply stays uncached — matching is
// cheap, and the bound is what keeps an adversarial topic stream from
// growing broker memory.
func (c *routeCache) store(topic string, epoch uint64, subs []routeSub, tc *topicCount, valid bool) []routeSub {
	owned := make([]routeSub, len(subs))
	copy(owned, subs)
	val := &rcVal{epoch: epoch, subs: owned, tc: tc, valid: valid}
	sh := &c.shards[rcHash(topic)&(routeCacheShards-1)]
	if mp := sh.m.Load(); mp != nil {
		if cell := (*mp)[topic]; cell != nil {
			cell.v.Store(val)
			return owned
		}
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	mp := sh.m.Load()
	var nm map[string]*rcCell
	if mp == nil {
		nm = make(map[string]*rcCell, 8)
	} else {
		if cell := (*mp)[topic]; cell != nil { // raced with another insert
			cell.v.Store(val)
			return owned
		}
		if len(*mp) >= routeCacheShardMax {
			nm = make(map[string]*rcCell, routeCacheShardMax/2)
			for k, cl := range *mp {
				if v := cl.v.Load(); v != nil && v.epoch == epoch {
					nm[k] = cl
				}
			}
			if len(nm) >= routeCacheShardMax {
				return owned // shard genuinely hot and full
			}
		} else {
			nm = make(map[string]*rcCell, len(*mp)+1)
			for k, cl := range *mp {
				nm[k] = cl
			}
		}
	}
	cell := &rcCell{}
	cell.v.Store(val)
	nm[topic] = cell
	sh.m.Store(&nm)
	return owned
}

// rcHash is FNV-1a over the topic bytes (allocation-free).
func rcHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}
