package broker

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/ifot-middleware/ifot/internal/mqttclient"
	"github.com/ifot-middleware/ifot/internal/wire"
)

// TestSlowStatsDoesNotStallPublishes pins down the read-mostly locking
// contract: a Stats/PublishCounts scrape holds only read locks, so an
// arbitrarily slow scrape (simulated here by holding the same mu.RLock a
// Stats snapshot holds) cannot stall a concurrent publish. Under the old
// single-Mutex broker this test deadlines out.
func TestSlowStatsDoesNotStallPublishes(t *testing.T) {
	bus := newTestBus(t, Options{})
	sub := bus.connect(t, mqttclient.NewOptions("sub"))
	got := make(chan mqttclient.Message, 1)
	if _, err := sub.Subscribe("stats/t", wire.QoS0, func(m mqttclient.Message) { got <- m }); err != nil {
		t.Fatal(err)
	}
	pub := bus.connect(t, mqttclient.NewOptions("pub"))

	// Stand-in for a scrape that is mid-snapshot for a long time.
	bus.broker.mu.RLock()
	defer bus.broker.mu.RUnlock()

	if err := pub.Publish("stats/t", []byte("x"), wire.QoS0, false); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("publish stalled behind a slow Stats reader")
	}

	// The snapshots themselves must also complete while we hold the read
	// lock (they take no write locks).
	done := make(chan struct{})
	go func() {
		_ = bus.broker.Stats()
		_ = bus.broker.PublishCounts()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stats/PublishCounts blocked on a concurrent reader")
	}
}

// TestBrokerStressConcurrentMixedQoS hammers the broker with M concurrent
// publishers × N subscribers across exact and wildcard filters at mixed
// QoS, with a retained stream and subscribers arriving mid-flight. It
// asserts the broker's delivery invariants under the read-mostly locking:
//
//   - zero lost and zero duplicated QoS1 messages, in per-publisher order,
//     for every QoS1 subscriber (exact and wildcard);
//   - retained-replay ordering: a late subscriber's received sequence on
//     the retained topic is strictly increasing — the retained snapshot it
//     is replayed is never fresher than a live message that follows it.
//
// Run with -race; the scheduler noise is the point.
func TestBrokerStressConcurrentMixedQoS(t *testing.T) {
	const (
		publishers  = 4
		perPub      = 100
		retainedMsg = 120
		lateSubs    = 5
	)
	// Queues must absorb the full QoS1 stream: an overflowing QoS1
	// delivery is parked for redelivery on reconnect, which this test
	// (no reconnects) would observe as a loss.
	bus := newTestBus(t, Options{SessionQueueSize: 8192})

	type rx struct {
		mu   sync.Mutex
		msgs []mqttclient.Message
	}
	record := func(r *rx) mqttclient.Handler {
		return func(m mqttclient.Message) {
			r.mu.Lock()
			r.msgs = append(r.msgs, m)
			r.mu.Unlock()
		}
	}

	// Static subscriber pool: exact and wildcard filters at QoS1 (loss
	// and duplication asserted) plus QoS0 subscribers (drops allowed,
	// duplicates impossible by construction — not asserted).
	subs := make([]*rx, 0)
	subFilters := []struct {
		filter string
		qos    wire.QoS
	}{
		{"stress/p0", wire.QoS1},
		{"stress/+", wire.QoS1},
		{"stress/#", wire.QoS1},
		{"stress/p1", wire.QoS1},
		{"stress/+", wire.QoS0},
		{"stress/p2", wire.QoS0},
	}
	for i, sf := range subFilters {
		r := &rx{}
		subs = append(subs, r)
		c := bus.connect(t, mqttclient.NewOptions(fmt.Sprintf("sub-%d", i)))
		if _, err := c.Subscribe(sf.filter, sf.qos, record(r)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	// M concurrent QoS1 publishers, each with its own topic and sequence.
	for p := 0; p < publishers; p++ {
		p := p
		c := bus.connect(t, mqttclient.NewOptions(fmt.Sprintf("pub-%d", p)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			topic := fmt.Sprintf("stress/p%d", p)
			for i := 0; i < perPub; i++ {
				if err := c.Publish(topic, []byte(strconv.Itoa(i)), wire.QoS1, false); err != nil {
					t.Errorf("publisher %d: %v", p, err)
					return
				}
			}
		}()
	}

	// Retained stream: one publisher writing increasing sequence numbers
	// retained to one topic, racing the late subscribers below.
	retPub := bus.connect(t, mqttclient.NewOptions("ret-pub"))
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < retainedMsg; i++ {
			if err := retPub.Publish("stress/retained", []byte(strconv.Itoa(i)), wire.QoS1, true); err != nil {
				t.Errorf("retained publisher: %v", err)
				return
			}
		}
	}()

	// Late subscribers arrive while the retained stream is in flight;
	// each must observe a strictly increasing sequence starting with its
	// retained replay.
	lateRx := make([]*rx, lateSubs)
	for i := 0; i < lateSubs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(i) * 3 * time.Millisecond)
			r := &rx{}
			lateRx[i] = r
			c := bus.connect(t, mqttclient.NewOptions(fmt.Sprintf("late-%d", i)))
			if _, err := c.Subscribe("stress/retained", wire.QoS1, record(r)); err != nil {
				t.Errorf("late subscriber %d: %v", i, err)
			}
		}()
	}
	wg.Wait()

	// Drain: every QoS1 publish was acked by the broker; deliveries ride
	// the same ordered per-session queues, so poll until every QoS1
	// subscriber has its full complement (the wildcards also match the
	// retained stream's topic).
	wantAll := publishers * perPub
	count := func(r *rx) int {
		r.mu.Lock()
		defer r.mu.Unlock()
		return len(r.msgs)
	}
	targets := []struct {
		r    *rx
		want int
	}{
		{subs[0], perPub},
		{subs[1], wantAll + retainedMsg},
		{subs[2], wantAll + retainedMsg},
		{subs[3], perPub},
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, tgt := range targets {
			if count(tgt.r) < tgt.want {
				done = false
				break
			}
		}
		if done {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Per-publisher exact-once, in-order delivery for QoS1 subscribers.
	checkSeq := func(name string, r *rx, topics map[string]int) {
		t.Helper()
		r.mu.Lock()
		defer r.mu.Unlock()
		next := make(map[string]int)
		for _, m := range r.msgs {
			want, tracked := topics[m.Topic]
			if !tracked {
				continue
			}
			seq, err := strconv.Atoi(string(m.Payload))
			if err != nil {
				t.Fatalf("%s: bad payload %q on %s", name, m.Payload, m.Topic)
			}
			if seq != next[m.Topic] {
				t.Fatalf("%s: topic %s got seq %d, want %d (lost or duplicated QoS1 message)",
					name, m.Topic, seq, next[m.Topic])
			}
			next[m.Topic]++
			_ = want
		}
		for topic, want := range topics {
			if next[topic] != want {
				t.Fatalf("%s: topic %s delivered %d/%d QoS1 messages", name, topic, next[topic], want)
			}
		}
	}
	checkSeq("exact-p0", subs[0], map[string]int{"stress/p0": perPub})
	allTopics := map[string]int{}
	for p := 0; p < publishers; p++ {
		allTopics[fmt.Sprintf("stress/p%d", p)] = perPub
	}
	checkSeq("wildcard-plus", subs[1], allTopics)
	checkSeq("wildcard-hash", subs[2], allTopics)
	checkSeq("exact-p1", subs[3], map[string]int{"stress/p1": perPub})

	// Retained-replay ordering for the late arrivals.
	for i, r := range lateRx {
		if r == nil {
			continue
		}
		r.mu.Lock()
		last := -1
		for j, m := range r.msgs {
			seq, err := strconv.Atoi(string(m.Payload))
			if err != nil {
				t.Fatalf("late-%d: bad payload %q", i, m.Payload)
			}
			if seq <= last {
				t.Fatalf("late-%d: sequence went backwards (%d after %d at index %d): "+
					"live stream ran behind the retained replay", i, seq, last, j)
			}
			last = seq
		}
		if len(r.msgs) == 0 {
			t.Fatalf("late-%d: no retained replay received", i)
		}
		r.mu.Unlock()
	}
}
