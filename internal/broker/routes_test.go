package broker

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/ifot-middleware/ifot/internal/mqttclient"
	"github.com/ifot-middleware/ifot/internal/wire"
)

// TestPublishUnroutableTopicCountsAllDrops pins the drop accounting for
// messages whose topic cannot be encoded into a PUBLISH frame (reachable
// only through the internal Publish API, e.g. a wildcard in the topic
// name). Every matched subscriber — QoS1 ones included — must be counted
// as dropped, and no subscriber connection may be torn down by the
// unroutable message (previously the QoS1 packet's encode failure killed
// the subscriber's writer).
func TestPublishUnroutableTopicCountsAllDrops(t *testing.T) {
	bus := newTestBus(t, Options{})
	subA := bus.connect(t, mqttclient.NewOptions("sub-a"))
	subB := bus.connect(t, mqttclient.NewOptions("sub-b"))

	var mu sync.Mutex
	var gotA, gotB []string
	if _, err := subA.Subscribe("bad/#", wire.QoS0, func(m mqttclient.Message) {
		mu.Lock()
		gotA = append(gotA, m.Topic)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := subB.Subscribe("bad/#", wire.QoS1, func(m mqttclient.Message) {
		mu.Lock()
		gotB = append(gotB, m.Topic)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	base := bus.broker.Stats()
	// "bad/+" matches both "bad/#" subscriptions but is not a valid topic
	// *name*, so no frame or packet can be encoded for it.
	bus.broker.Publish("bad/+", []byte("x"), wire.QoS1, false)
	waitFor(t, "both matches counted dropped", func() bool {
		return bus.broker.Stats().MessagesDropped >= base.MessagesDropped+2
	})
	if d := bus.broker.Stats().MessagesDropped - base.MessagesDropped; d != 2 {
		t.Fatalf("dropped delta = %d, want exactly 2 (one per matched subscriber)", d)
	}

	// Both subscriber connections must have survived and still deliver.
	pub := bus.connect(t, mqttclient.NewOptions("pub"))
	if err := pub.Publish("bad/ok", []byte("y"), wire.QoS1, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "valid publish delivered to both", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(gotA) == 1 && len(gotB) == 1
	})
	mu.Lock()
	defer mu.Unlock()
	if gotA[0] != "bad/ok" || gotB[0] != "bad/ok" {
		t.Fatalf("subscribers saw %v / %v, want only the valid topic", gotA, gotB)
	}
}

// TestSubscriptionChurnUnderPublishLoad drives a sustained QoS1 publish
// stream at a stable subscriber while other clients churn subscriptions,
// forcing route-snapshot swaps mid-stream. The stable subscriber must see
// every message exactly once, in publish order — no delivery may be lost
// or duplicated across a swap. Run with -race this also exercises the
// epoch gate's reader/writer fencing.
func TestSubscriptionChurnUnderPublishLoad(t *testing.T) {
	bus := newTestBus(t, Options{SessionQueueSize: 4096})

	stable := bus.connect(t, mqttclient.NewOptions("stable"))
	var mu sync.Mutex
	var got []int
	if _, err := stable.Subscribe("churn/stable", wire.QoS1, func(m mqttclient.Message) {
		seq, err := strconv.Atoi(string(m.Payload))
		if err != nil {
			seq = -1
		}
		mu.Lock()
		got = append(got, seq)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	startEpoch := bus.broker.RouteEpoch()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		churner := bus.connect(t, mqttclient.NewOptions(fmt.Sprintf("churner-%d", c)))
		filters := []string{
			fmt.Sprintf("churn/noise%d/#", c),
			fmt.Sprintf("churn/+/n%d", c),
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f := filters[i%len(filters)]
				if _, err := churner.Subscribe(f, wire.QoS0, func(mqttclient.Message) {}); err != nil {
					return
				}
				if err := churner.Unsubscribe(f); err != nil {
					return
				}
			}
		}()
	}

	pub := bus.connect(t, mqttclient.NewOptions("pub"))
	const n = 300
	for i := 0; i < n; i++ {
		if err := pub.Publish("churn/stable", []byte(strconv.Itoa(i)), wire.QoS1, false); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	waitFor(t, "stable subscriber caught up", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= n
	})
	mu.Lock()
	defer mu.Unlock()
	if len(got) != n {
		t.Fatalf("received %d messages, want exactly %d", len(got), n)
	}
	for i, seq := range got {
		if seq != i {
			t.Fatalf("position %d: got seq %d — delivery lost, duplicated, or reordered across a snapshot swap", i, seq)
		}
	}
	if swaps := bus.broker.RouteEpoch() - startEpoch; swaps < 10 {
		t.Fatalf("only %d snapshot swaps happened during the churn window; churners were starved", swaps)
	}
}

// TestRouteMatchZeroAllocs pins the acceptance criterion that the match
// step allocates nothing on the hot path: both the snapshot matcher (the
// single-filter fast path and the multi-filter merge path) and a route
// cache hit must be allocation-free once scratch buffers are warm.
func TestRouteMatchZeroAllocs(t *testing.T) {
	tr := newSubTrie()
	s1 := newSession("c1", false)
	s2 := newSession("c2", false)
	tr.subscribe("iot/dev/+", s1, wire.QoS0)
	tr.subscribe("iot/dev/temp", s2, wire.QoS1)
	tr.subscribe("iot/#", s2, wire.QoS0)
	tbl := tr.build(1)

	mb := getMatchBuf()
	defer mb.release()

	// Single-filter fast path: exactly one terminal node matches and the
	// result aliases its immutable subs slice.
	if n := testing.AllocsPerRun(200, func() {
		if len(tbl.match("iot/other", mb)) != 1 {
			t.Fatal("unexpected match count")
		}
	}); n != 0 {
		t.Fatalf("single-filter match allocates %.1f/op, want 0", n)
	}

	// Multi-filter merge path: three filters match, sessions dedup on
	// highest QoS in the pooled merge buffer.
	if n := testing.AllocsPerRun(200, func() {
		if len(tbl.match("iot/dev/temp", mb)) != 2 {
			t.Fatal("unexpected merge count")
		}
	}); n != 0 {
		t.Fatalf("merge match allocates %.1f/op, want 0", n)
	}

	// Route cache hit: one shard-map load, one cell load, epoch compare.
	var rc routeCache
	rc.store("iot/dev/temp", 1, tbl.match("iot/dev/temp", mb), nil, true)
	if n := testing.AllocsPerRun(200, func() {
		if rc.lookup("iot/dev/temp", 1) == nil {
			t.Fatal("unexpected cache miss")
		}
	}); n != 0 {
		t.Fatalf("cache hit allocates %.1f/op, want 0", n)
	}
}

// TestRouteCacheEpochInvalidation checks that a cached entry is served
// only for the epoch it was stored under, and that refreshing after a
// swap replaces the stale value in place.
func TestRouteCacheEpochInvalidation(t *testing.T) {
	var rc routeCache
	s := newSession("c", false)
	subs := []routeSub{{session: s, qos: wire.QoS1}}

	rc.store("a/b", 1, subs, nil, true)
	if v := rc.lookup("a/b", 1); v == nil || len(v.subs) != 1 || !v.valid {
		t.Fatalf("fresh lookup = %+v, want the stored route", v)
	}
	if v := rc.lookup("a/b", 2); v != nil {
		t.Fatal("stale-epoch lookup returned a value; must miss after a snapshot swap")
	}
	rc.store("a/b", 2, nil, nil, true)
	if v := rc.lookup("a/b", 2); v == nil || len(v.subs) != 0 {
		t.Fatalf("refreshed lookup = %+v, want the empty epoch-2 route", v)
	}
	if v := rc.lookup("a/b", 1); v != nil {
		t.Fatal("old epoch still served after refresh")
	}
}

// TestParallelFanoutDeliversAll covers the helper-pool fan-out path:
// above fanoutThreshold subscribers, one publish is split across the
// publisher and the helpers, and every subscriber must still receive
// exactly one copy of the frame.
func TestParallelFanoutDeliversAll(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	if b.fanoutQ == nil {
		// Single-proc host at Open time: start a pool manually so the
		// parallel path is exercised regardless of GOMAXPROCS.
		b.startFanoutHelpers(2)
	}

	const n = fanoutThreshold + 37
	chans := make([]chan outPacket, n)
	b.mu.Lock()
	for i := 0; i < n; i++ {
		s := newSession(fmt.Sprintf("f%d", i), false)
		b.sessions[s.clientID] = s
		b.trie.subscribe("fan/t", s, wire.QoS0)
		ch, _, _ := s.attach(4)
		chans[i] = ch
	}
	b.swapRoutesLocked()
	b.mu.Unlock()

	// Publish returns only after every chunk (publisher's and helpers')
	// has completed, so the channels can be inspected immediately.
	b.Publish("fan/t", []byte("payload"), wire.QoS0, false)

	for i, ch := range chans {
		select {
		case op := <-ch:
			if op.frame == nil {
				t.Fatalf("session %d received a non-frame delivery", i)
			}
		default:
			t.Fatalf("session %d missed the fan-out delivery", i)
		}
		select {
		case <-ch:
			t.Fatalf("session %d received a duplicate delivery", i)
		default:
		}
	}
	if d := b.Stats().MessagesDropped; d != 0 {
		t.Fatalf("parallel fan-out dropped %d deliveries on empty queues", d)
	}
}

// TestStatsSkipsRetainedMu pins the satellite that moved the retained
// count off retainedMu: a Stats snapshot (and thus a $SYS tick or metrics
// scrape) must complete even while a publish holds the retained map lock.
func TestStatsSkipsRetainedMu(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	b.Publish("r/t", []byte("v"), wire.QoS0, true)

	b.retainedMu.Lock()
	defer b.retainedMu.Unlock()
	done := make(chan Stats, 1)
	go func() { done <- b.Stats() }()
	select {
	case st := <-done:
		if st.RetainedMessages != 1 {
			t.Fatalf("RetainedMessages = %d, want 1", st.RetainedMessages)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Stats blocked on retainedMu")
	}
}
