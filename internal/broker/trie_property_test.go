package broker

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/ifot-middleware/ifot/internal/wire"
)

// randomLevel picks a topic level, occasionally a wildcard (filters only).
func randomLevel(rng *rand.Rand, wildcards bool) string {
	if wildcards {
		switch rng.Intn(8) {
		case 0:
			return "+"
		case 1:
			return "#"
		}
	}
	return string(rune('a' + rng.Intn(3)))
}

func randomTopic(rng *rand.Rand) string {
	n := rng.Intn(4) + 1
	levels := make([]string, n)
	for i := range levels {
		levels[i] = randomLevel(rng, false)
	}
	return strings.Join(levels, "/")
}

func randomFilter(rng *rand.Rand) string {
	n := rng.Intn(4) + 1
	levels := make([]string, n)
	for i := range levels {
		levels[i] = randomLevel(rng, true)
		if levels[i] == "#" {
			return strings.Join(levels[:i+1], "/")
		}
	}
	return strings.Join(levels, "/")
}

// idsRoute flattens a snapshot match result the same way ids does for the
// builder trie's subscriber list.
func idsRoute(subs []routeSub) map[string]wire.QoS {
	out := make(map[string]wire.QoS, len(subs))
	for _, s := range subs {
		out[s.session.clientID] = s.qos
	}
	return out
}

func sameMatch(got, want map[string]wire.QoS) bool {
	if len(got) != len(want) {
		return false
	}
	for id, qos := range want {
		if g, ok := got[id]; !ok || g != qos {
			return false
		}
	}
	return true
}

// TestTrieMatchesNaiveOracle drives random subscribe/unsubscribe sequences
// and checks that trie matching agrees with the spec-level wire.MatchTopic
// oracle applied to a plain list of subscriptions.
func TestTrieMatchesNaiveOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := newSubTrie()
		type subEntry struct {
			filter string
			qos    wire.QoS
		}
		oracle := make(map[string]map[string]subEntry) // client -> filter -> entry
		sessions := make(map[string]*session)

		const clients = 4
		for i := 0; i < clients; i++ {
			id := fmt.Sprintf("c%d", i)
			sessions[id] = newSession(id, false)
			oracle[id] = make(map[string]subEntry)
		}

		// Random mutation sequence.
		for op := 0; op < 60; op++ {
			id := fmt.Sprintf("c%d", rng.Intn(clients))
			switch rng.Intn(4) {
			case 0, 1: // subscribe
				filter := randomFilter(rng)
				if wire.ValidateTopicFilter(filter) != nil {
					continue
				}
				qos := wire.QoS(rng.Intn(2))
				tr.subscribe(filter, sessions[id], qos)
				oracle[id][filter] = subEntry{filter: filter, qos: qos}
			case 2: // unsubscribe something we may or may not have
				filter := randomFilter(rng)
				tr.unsubscribe(filter, id)
				delete(oracle[id], filter)
			case 3: // remove all for a client
				tr.removeAll(id)
				oracle[id] = make(map[string]subEntry)
			}
		}

		// All three matchers must agree with the oracle: the builder trie,
		// the immutable route snapshot built from it, and a route-cache
		// store/lookup round-trip of the snapshot's result.
		tbl := tr.build(7)
		var rc routeCache
		mb := getMatchBuf()
		defer mb.release()

		for probe := 0; probe < 40; probe++ {
			topic := randomTopic(rng)

			want := make(map[string]wire.QoS)
			for id, subs := range oracle {
				for _, e := range subs {
					if wire.MatchTopic(e.filter, topic) {
						if q, ok := want[id]; !ok || e.qos > q {
							want[id] = e.qos
						}
					}
				}
			}

			got := ids(tr.match(topic))
			if !sameMatch(got, want) {
				t.Logf("seed %d topic %q: trie=%v oracle=%v", seed, topic, got, want)
				return false
			}
			snapGot := idsRoute(tbl.match(topic, mb))
			if !sameMatch(snapGot, want) {
				t.Logf("seed %d topic %q: snapshot=%v oracle=%v", seed, topic, snapGot, want)
				return false
			}
			rc.store(topic, 7, tbl.match(topic, mb), nil, true)
			hit := rc.lookup(topic, 7)
			if hit == nil {
				t.Logf("seed %d topic %q: cache miss right after store", seed, topic)
				return false
			}
			if cacheGot := idsRoute(hit.subs); !sameMatch(cacheGot, want) {
				t.Logf("seed %d topic %q: cache=%v oracle=%v", seed, topic, cacheGot, want)
				return false
			}
			if rc.lookup(topic, 8) != nil {
				t.Logf("seed %d topic %q: cache served a stale epoch", seed, topic)
				return false
			}
		}

		// Count must equal the oracle's total subscription count, in both
		// the builder and the snapshot it produced.
		total := 0
		for _, subs := range oracle {
			total += len(subs)
		}
		if tr.countSubscriptions() != total {
			t.Logf("seed %d: trie count %d, oracle %d", seed, tr.countSubscriptions(), total)
			return false
		}
		if tbl.subCount != total {
			t.Logf("seed %d: snapshot count %d, oracle %d", seed, tbl.subCount, total)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
