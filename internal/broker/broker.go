// Package broker implements an MQTT 3.1.1 message broker. It is the IFoT
// middleware's Broker class (the paper's prototype used Mosquitto; this is
// a from-scratch conforming replacement supporting QoS 0/1 subscriptions,
// QoS 0/1/2 inbound publishes, retained messages, persistent sessions,
// wills, and `+`/`#` wildcard filters).
package broker

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ifot-middleware/ifot/internal/store"
	"github.com/ifot-middleware/ifot/internal/telemetry"
	"github.com/ifot-middleware/ifot/internal/wire"
)

// Errors returned by the broker.
var (
	ErrClosed = errors.New("broker: closed")
)

// Authenticator decides whether a CONNECT with the given credentials is
// accepted. username is empty when the client sent none.
type Authenticator func(clientID, username string, password []byte) bool

// Options configures a Broker. The zero value is usable.
type Options struct {
	// MaxQoS caps the QoS granted to subscriptions (default QoS1).
	MaxQoS wire.QoS
	// MaxPacketSize bounds inbound packets in bytes (default 1 MiB).
	MaxPacketSize int
	// SessionQueueSize is the per-connection outbound queue length
	// (default 256).
	SessionQueueSize int
	// Authenticator, when set, gates connections.
	Authenticator Authenticator
	// Logger receives diagnostic messages; nil silences them.
	Logger *log.Logger
	// Registry, when set, receives broker metrics (message counters,
	// per-topic publish counts, connection gauges) for Prometheus/MQTT
	// exposition.
	Registry *telemetry.Registry
	// Store, when set, makes broker state durable: retained messages,
	// persistent sessions (subscriptions, QoS1 inflight/queued messages)
	// are journaled to the store and recovered by Open. The broker does
	// not close the store; the caller that opened it does, after Close.
	// Nil (the default) keeps today's purely in-memory behavior.
	Store store.Store
	// SnapshotBytes is the live-WAL size that triggers automatic
	// snapshot compaction (default 4 MiB; only meaningful with Store).
	SnapshotBytes int64
	// Events, when set, receives structured events for durability
	// degradation (journal append failures, snapshot failures). Share
	// the same log with Store's Options.Events to get WAL recovery
	// events alongside them.
	Events *telemetry.EventLog
}

func (o Options) withDefaults() Options {
	if o.MaxQoS == 0 {
		o.MaxQoS = wire.QoS1
	}
	if o.MaxQoS > wire.QoS1 {
		o.MaxQoS = wire.QoS1 // outbound QoS2 delivery is not implemented
	}
	if o.MaxPacketSize <= 0 {
		o.MaxPacketSize = 1 << 20
	}
	if o.SessionQueueSize <= 0 {
		o.SessionQueueSize = 256
	}
	if o.SnapshotBytes <= 0 {
		o.SnapshotBytes = 4 << 20
	}
	return o
}

// Stats is a snapshot of broker counters.
type Stats struct {
	ConnectedClients  int
	Sessions          int
	Subscriptions     int
	RetainedMessages  int
	MessagesReceived  int64
	MessagesDelivered int64
	MessagesDropped   int64
}

type retainedMsg struct {
	payload []byte
	qos     wire.QoS
}

// Broker is an MQTT broker. Create one with New, feed it connections with
// Serve or ServeConn, and stop it with Close.
//
// Locking model (epoch-published routing). The publish hot path acquires
// zero locks: it opens a read section on the epoch gate (two uncontended
// per-shard atomic adds, see gate.go), loads the current immutable
// routeTable snapshot, and routes through the epoch-keyed route cache or
// the zero-alloc snapshot matcher (routes.go). Subscribe, unsubscribe, and
// session churn mutate the builder trie under mu, build a fresh snapshot,
// and swap it in under the gate's writer fence.
//
// The store+route atomicity invariant for retained messages (see publish)
// is preserved because the gate writer excludes every in-flight publish
// read section whole — exactly the exclusion the mu.RLock/mu.Lock pairing
// used to provide: a subscriber registering inside the fence observes each
// concurrent publish either entirely (retained stored AND fanned out) or
// not at all. The fence covers only the snapshot swap and retained replay;
// snapshot *rebuilding* happens outside it, so publishes keep flowing
// while a large trie is copied. The gate parks new readers while a writer
// drains, so subscribes cannot starve under publish load.
//
// Lock order: mu ⊃ gate ⊃ {retainedMu, session.mu}; trie.mu and pubMu are
// leaf locks never taken by the publish path (a cached publish touches
// neither). Counters (received, delivered, retained count, per-topic
// accounting) are atomics so neither the publish path nor the
// per-connection writer goroutines ever take mu.
type Broker struct {
	opts  Options
	start time.Time

	mu        sync.RWMutex
	sessions  map[string]*session // all sessions (connected and parked)
	conns     map[string]net.Conn // live connection per client ID
	listeners []net.Listener
	closed    bool

	// gate fences publish read sections against route-snapshot swaps and
	// retained replay; routes holds the current immutable snapshot and
	// rcache the per-topic, epoch-keyed route memo (see routes.go).
	gate       *epochGate
	routes     atomic.Pointer[routeTable]
	routeEpoch atomic.Uint64
	rcache     routeCache

	// retainedMu guards the retained map. Publishes mutate it while
	// holding only a gate read section, so map access needs this inner
	// mutex; the ordering of store against route is provided by the gate
	// fence (above). retainedCount shadows len(retained) so Stats and
	// $SYS ticks never touch this publish-path lock.
	retainedMu    sync.Mutex
	retained      map[string]retainedMsg
	retainedCount atomic.Int64

	received  atomic.Int64
	delivered atomic.Int64

	// routeDropped counts matched subscribers that were never offered a
	// message because its frame could not be encoded (unroutable topic via
	// the internal Publish API). Session queue-full drops are accounted on
	// the sessions themselves; this captures the remainder so Stats sees
	// every undelivered match.
	routeDropped atomic.Int64

	// fanoutQ feeds oversized subscriber sets to the fan-out helper pool;
	// nil when the pool is disabled (single-proc hosts). fanoutStop ends
	// the helpers at Close.
	fanoutQ    chan *fanoutJob
	fanoutStop chan struct{}

	// anonSeq feeds generated client IDs for anonymous clean-session
	// connects. A monotonic counter cannot collide (unlike the previous
	// pointer-formatted IDs, which could recur after allocator reuse and
	// silently take over a live session).
	anonSeq atomic.Uint64

	// pubByTopic counts publishes per topic, bounded to maxPublishTopics
	// distinct keys (overflow lands in overflowTopicKey) so an adversarial
	// topic stream cannot grow broker memory or metric cardinality.
	// pubMu is read-locked to find an existing counter (the common case);
	// the write lock is taken only to install a new topic's counter.
	pubMu      sync.RWMutex
	pubByTopic map[string]*topicCount

	trie    *subTrie
	wg      sync.WaitGroup
	metrics *brokerMetrics

	// persist is non-nil when Options.Store is set; it owns the WAL
	// journal handle and the message-ID sequence (see persist.go).
	persist *persister
}

// topicCount is one topic's publish accounting: a lock-free counter plus
// the telemetry series handle (nil when no Registry is configured).
type topicCount struct {
	n      atomic.Int64
	metric *telemetry.Counter
}

func (tc *topicCount) bump() {
	tc.n.Add(1)
	if tc.metric != nil {
		tc.metric.Inc()
	}
}

// maxPublishTopics bounds the per-topic publish accounting (and the
// telemetry series derived from it).
const maxPublishTopics = 64

// overflowTopicKey aggregates publishes on topics beyond maxPublishTopics.
const overflowTopicKey = "~other"

// New creates a broker with the given options. With Options.Store set it
// panics on an unrecoverable store (use Open to handle that error).
func New(opts Options) *Broker {
	b, err := Open(opts)
	if err != nil {
		panic(err)
	}
	return b
}

// Open creates a broker and, when Options.Store is set, recovers durable
// state (retained messages, persistent sessions, QoS1 queues) from it
// before any connection is accepted.
func Open(opts Options) (*Broker, error) {
	b := &Broker{
		opts:       opts.withDefaults(),
		start:      time.Now(),
		sessions:   make(map[string]*session),
		conns:      make(map[string]net.Conn),
		retained:   make(map[string]retainedMsg),
		pubByTopic: make(map[string]*topicCount),
		trie:       newSubTrie(),
		gate:       newEpochGate(),
	}
	if b.opts.Registry != nil {
		b.metrics = newBrokerMetrics(b.opts.Registry, b)
	}
	if st := b.opts.Store; st != nil {
		b.persist = &persister{logger: b.opts.Logger, events: b.opts.Events}
		if err := b.recoverState(st); err != nil {
			return nil, err
		}
		b.persist.journal = store.NewJournal(st, b.captureState, b.opts.SnapshotBytes, b.opts.Logger)
		b.persist.journal.SetEvents(b.opts.Events)
	}
	// Publish the initial route snapshot (covering any recovered
	// subscriptions) before a connection or internal publisher can route.
	b.routes.Store(b.trie.build(b.routeEpoch.Add(1)))
	b.retainedCount.Store(int64(len(b.retained)))
	b.startFanoutHelpers(fanoutHelperCount())
	return b, nil
}

// Uptime reports how long ago the broker was created.
func (b *Broker) Uptime() time.Duration { return time.Since(b.start) }

// brokerMetrics holds the broker's telemetry handles. Per-topic counter
// handles live on the topicCount entries in Broker.pubByTopic.
type brokerMetrics struct {
	reg       *telemetry.Registry
	received  *telemetry.Counter
	delivered *telemetry.Counter
	dropped   *telemetry.Counter
}

func newBrokerMetrics(reg *telemetry.Registry, b *Broker) *brokerMetrics {
	m := &brokerMetrics{
		reg:       reg,
		received:  reg.Counter("ifot_broker_messages_received_total", "PUBLISH packets received from clients"),
		delivered: reg.Counter("ifot_broker_messages_delivered_total", "PUBLISH packets written to subscriber connections"),
		dropped:   reg.Counter("ifot_broker_messages_dropped_total", "messages not accepted by a matching session (queue full or offline)"),
	}
	reg.GaugeFunc("ifot_broker_clients_connected", "currently connected clients",
		func() float64 { return float64(b.Stats().ConnectedClients) })
	reg.GaugeFunc("ifot_broker_sessions", "sessions including parked persistent ones",
		func() float64 { return float64(b.Stats().Sessions) })
	reg.GaugeFunc("ifot_broker_subscriptions", "active subscriptions",
		func() float64 { return float64(b.Stats().Subscriptions) })
	reg.GaugeFunc("ifot_broker_retained_messages", "retained messages stored",
		func() float64 { return float64(b.Stats().RetainedMessages) })
	reg.GaugeFunc("ifot_broker_uptime_seconds", "seconds since the broker was created",
		func() float64 { return b.Uptime().Seconds() })
	reg.GaugeFunc("ifot_broker_route_epoch", "monotonic routing snapshot epoch; bumps on every subscription or session-churn swap",
		func() float64 { return float64(b.RouteEpoch()) })
	reg.CounterFunc("ifot_broker_route_cache_hits_total", "publishes routed from the epoch-keyed route cache",
		func() int64 { h, _ := b.gate.cacheStats(); return h })
	reg.CounterFunc("ifot_broker_route_cache_misses_total", "publishes that matched against the route snapshot (cold or stale cache entry)",
		func() int64 { _, miss := b.gate.cacheStats(); return miss })
	return m
}

// RouteEpoch returns the epoch of the current routing snapshot. It bumps
// on every subscribe, unsubscribe, and route-affecting session change.
func (b *Broker) RouteEpoch() uint64 { return b.routes.Load().epoch }

// RouteCacheStats returns cumulative route-cache hit/miss counts.
func (b *Broker) RouteCacheStats() (hits, misses int64) { return b.gate.cacheStats() }

// Serve accepts connections from l until the broker or listener is closed.
func (b *Broker) Serve(l net.Listener) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	b.listeners = append(b.listeners, l)
	b.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			b.mu.RLock()
			closed := b.closed
			b.mu.RUnlock()
			if closed {
				return ErrClosed
			}
			return fmt.Errorf("broker accept: %w", err)
		}
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.handleConn(conn)
		}()
	}
}

// ServeConn runs the MQTT protocol on a single already-accepted connection,
// returning when the connection ends. It is useful with in-memory pipes.
func (b *Broker) ServeConn(conn net.Conn) {
	b.wg.Add(1)
	defer b.wg.Done()
	b.handleConn(conn)
}

// Close stops all listeners, disconnects every client, and waits for the
// connection handlers to finish.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	listeners := b.listeners
	conns := make([]net.Conn, 0, len(b.conns))
	for _, c := range b.conns {
		conns = append(conns, c)
	}
	b.mu.Unlock()

	for _, l := range listeners {
		_ = l.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	b.wg.Wait()
	if b.fanoutStop != nil {
		// Helpers only park between jobs, and a claimed chunk always runs
		// to completion, so stopping them cannot strand a publish.
		close(b.fanoutStop)
	}
	if b.persist != nil {
		// Stop the snapshot goroutine. The store itself (and its final
		// flush/fsync) belongs to whoever opened it.
		b.persist.journal.Close()
	}
	return nil
}

// Stats returns a snapshot of broker counters. It touches no publish-path
// lock at all — subscription and retained counts come from the immutable
// route snapshot and an atomic gauge — so a slow or frequent metrics
// scrape never stalls concurrent publishes.
func (b *Broker) Stats() Stats {
	b.mu.RLock()
	defer b.mu.RUnlock()
	dropped := b.routeDropped.Load()
	for _, s := range b.sessions {
		dropped += s.dropped()
	}
	return Stats{
		ConnectedClients:  len(b.conns),
		Sessions:          len(b.sessions),
		Subscriptions:     b.routes.Load().subCount,
		RetainedMessages:  int(b.retainedCount.Load()),
		MessagesReceived:  b.received.Load(),
		MessagesDelivered: b.delivered.Load(),
		MessagesDropped:   dropped,
	}
}

func (b *Broker) logf(format string, args ...any) {
	if b.opts.Logger != nil {
		b.opts.Logger.Printf(format, args...)
	}
}

// handleConn drives one client connection through CONNECT and the steady
// state loop.
func (b *Broker) handleConn(conn net.Conn) {
	defer conn.Close()

	// The first packet must be CONNECT; give slow clients 10 seconds.
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	pkt, err := wire.ReadPacket(conn, b.opts.MaxPacketSize)
	if err != nil {
		return
	}
	connect, ok := pkt.(*wire.ConnectPacket)
	if !ok {
		return
	}
	if connect.ProtocolLevel != wire.ProtocolLevel311 && connect.ProtocolLevel != wire.ProtocolLevel31 {
		_ = wire.WritePacket(conn, &wire.ConnackPacket{Code: wire.ConnRefusedVersion})
		return
	}
	if connect.ClientID == "" && !connect.CleanSession {
		_ = wire.WritePacket(conn, &wire.ConnackPacket{Code: wire.ConnRefusedIdentifier})
		return
	}
	if connect.ClientID == "" {
		connect.ClientID = fmt.Sprintf("anon-%d", b.anonSeq.Add(1))
	}
	if b.opts.Authenticator != nil && !b.opts.Authenticator(connect.ClientID, connect.Username, connect.Password) {
		_ = wire.WritePacket(conn, &wire.ConnackPacket{Code: wire.ConnRefusedBadAuth})
		return
	}

	sess, sessionPresent, err := b.registerSession(connect, conn)
	if err != nil {
		return
	}
	outbound, resend, gen := sess.attach(b.opts.SessionQueueSize)

	if err := wire.WritePacket(conn, &wire.ConnackPacket{SessionPresent: sessionPresent, Code: wire.ConnAccepted}); err != nil {
		b.unregisterConn(sess, conn, gen)
		return
	}
	b.logf("broker: client %q connected (persistent=%v)", sess.clientID, sess.persistent)

	// Redeliver unacked and offline-queued QoS1 messages (already tracked
	// in the inflight window, so bypass deliver's ID allocation).
	for _, p := range resend {
		sess.send(p)
	}

	// Writer goroutine: drains the outbound queue into the socket through
	// a buffered writer, flushing only when the queue is momentarily empty
	// (Mosquitto-style corking). k packets queued back-to-back coalesce
	// into one syscall instead of k, and the delivery counter is bumped
	// once per drained batch instead of once per message. The channel is
	// never closed — teardown sends a zero outPacket sentinel instead —
	// so the lock-free QoS0 frame path can send without a lock protecting
	// it from a concurrent close. After a write error the writer keeps
	// discarding (the connection is already dead) until the sentinel
	// arrives, so teardown's sentinel send always completes.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		bw := bufio.NewWriterSize(conn, writerBufSize)
		discard := func() {
			for {
				if op := <-outbound; op.pkt == nil && op.frame == nil {
					return
				}
			}
		}
		for {
			op := <-outbound
			if op.pkt == nil && op.frame == nil {
				return // teardown sentinel
			}
			var batch int64
			for more := true; more; {
				n, err := b.writeOut(bw, op)
				batch += n
				if err != nil {
					b.noteDelivered(batch)
					discard()
					return
				}
				select {
				case op = <-outbound:
					if op.pkt == nil && op.frame == nil {
						b.noteDelivered(batch)
						return
					}
				default:
					more = false
				}
			}
			b.noteDelivered(batch)
			if bw.Flush() != nil {
				discard()
				return
			}
		}
	}()

	will := willOf(connect)
	normal := b.readLoop(conn, sess, connect.KeepAlive)

	// Tear down: detach so no further deliveries target this connection,
	// close the socket so a blocked writer errors out, then send the
	// sentinel that stops the writer once the queue has drained.
	b.unregisterConn(sess, conn, gen)
	_ = conn.Close()
	outbound <- outPacket{}
	<-writerDone

	if !normal && will != nil {
		// The unified path also honors WillRetain (spec 3.1.2-17): the
		// will is stored retained before fan-out, atomically.
		b.publish(will, sess.clientID)
	}
	b.logf("broker: client %q disconnected (graceful=%v)", sess.clientID, normal)
}

// willOf extracts the will message from a CONNECT, if any.
func willOf(c *wire.ConnectPacket) *wire.PublishPacket {
	if !c.WillFlag {
		return nil
	}
	return &wire.PublishPacket{
		Topic:   c.WillTopic,
		Payload: c.WillMessage,
		QoS:     c.WillQoS,
		Retain:  c.WillRetain,
	}
}

// registerSession creates or revives the session for a CONNECT, taking over
// any existing connection with the same client ID.
func (b *Broker) registerSession(connect *wire.ConnectPacket, conn net.Conn) (*session, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, false, ErrClosed
	}

	if old, ok := b.conns[connect.ClientID]; ok {
		// Session takeover (spec 3.1.4): disconnect the existing client.
		_ = old.Close()
		delete(b.conns, connect.ClientID)
	}

	sess, existed := b.sessions[connect.ClientID]
	sessionPresent := false
	if connect.CleanSession || !existed {
		if existed {
			if b.trie.removeAll(connect.ClientID) {
				// The discarded session's filters left the builder trie;
				// retire them from the published snapshot too.
				b.swapRoutesLocked()
			}
			if sess.persistent {
				// A formerly durable session is being discarded.
				b.persistSessionRemove(connect.ClientID)
			}
		}
		sess = newSession(connect.ClientID, !connect.CleanSession)
		sess.persist = b.persist
		if sess.persistent {
			b.persistSessionFresh(connect.ClientID)
		}
		b.sessions[connect.ClientID] = sess
	} else {
		sessionPresent = true
	}
	b.conns[connect.ClientID] = conn
	return sess, sessionPresent, nil
}

// unregisterConn detaches a finished connection and discards clean-session
// state.
func (b *Broker) unregisterConn(sess *session, conn net.Conn, gen uint64) {
	sess.detach(gen)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.conns[sess.clientID] == conn {
		delete(b.conns, sess.clientID)
		if !sess.persistent {
			delete(b.sessions, sess.clientID)
			if b.trie.removeAll(sess.clientID) {
				b.swapRoutesLocked()
			}
		}
	}
}

// swapRoutesLocked rebuilds the route snapshot from the builder trie and
// publishes it under the gate fence. Callers hold b.mu. The rebuild runs
// outside the fence — publishes flow (against the old snapshot) while the
// copy is made; only the pointer swap excludes them.
func (b *Broker) swapRoutesLocked() {
	tbl := b.trie.build(b.routeEpoch.Add(1))
	b.gate.lock()
	b.routes.Store(tbl)
	b.gate.unlock()
}

// readLoop processes inbound packets until the connection ends. It reports
// whether the client disconnected gracefully (DISCONNECT packet).
func (b *Broker) readLoop(conn net.Conn, sess *session, keepAlive uint16) (graceful bool) {
	for {
		if keepAlive > 0 {
			deadline := time.Duration(keepAlive) * time.Second * 3 / 2
			_ = conn.SetReadDeadline(time.Now().Add(deadline))
		} else {
			_ = conn.SetReadDeadline(time.Time{})
		}
		pkt, err := wire.ReadPacket(conn, b.opts.MaxPacketSize)
		if err != nil {
			return false
		}
		switch p := pkt.(type) {
		case *wire.PublishPacket:
			b.handlePublish(sess, p)
		case *wire.AckPacket:
			switch p.PacketType {
			case wire.PUBACK:
				sess.ack(p.PacketID)
			case wire.PUBREL:
				sess.releaseIncomingQoS2(p.PacketID)
				sess.send(&wire.AckPacket{PacketType: wire.PUBCOMP, PacketID: p.PacketID})
			case wire.PUBREC, wire.PUBCOMP:
				// Outbound QoS2 is never generated; ignore.
			}
		case *wire.SubscribePacket:
			b.handleSubscribe(sess, p)
		case *wire.UnsubscribePacket:
			b.handleUnsubscribe(sess, p)
		case *wire.PingreqPacket:
			sess.send(&wire.PingrespPacket{})
		case *wire.DisconnectPacket:
			return true
		case *wire.ConnectPacket:
			// Second CONNECT is a protocol violation (spec 3.1.0-2).
			return false
		default:
			return false
		}
	}
}

func (b *Broker) handlePublish(sess *session, p *wire.PublishPacket) {
	b.received.Add(1)
	if b.metrics != nil {
		b.metrics.received.Inc()
	}

	deliver := true
	switch p.QoS {
	case wire.QoS1:
		sess.send(&wire.AckPacket{PacketType: wire.PUBACK, PacketID: p.PacketID})
	case wire.QoS2:
		deliver = sess.markIncomingQoS2(p.PacketID)
		sess.send(&wire.AckPacket{PacketType: wire.PUBREC, PacketID: p.PacketID})
	}
	if !deliver {
		return
	}
	b.publish(p, sess.clientID)
}

// Publish injects a message into the broker as if published by an internal
// client — the path the $SYS publisher and telemetry exporters use.
func (b *Broker) Publish(topic string, payload []byte, qos wire.QoS, retain bool) {
	b.publish(&wire.PublishPacket{Topic: topic, Payload: payload, QoS: qos, Retain: retain}, "$internal")
}

// publish is the broker's single publish path. It acquires no locks on the
// hot path: the whole operation runs inside an epoch-gate read section
// (two uncontended per-shard atomic adds), routing against the immutable
// snapshot current for that section. Retained-message storage and
// subscriber fan-out happen under the same read section, keeping
// store+route atomic against subscribes: handleSubscribe swaps in its new
// snapshot and replays retained messages under the gate *writer* fence,
// which excludes every in-flight publish read section in its entirety, so
// a client subscribing concurrently with a stream of retained publishes
// can never observe the live stream going backwards relative to the
// retained snapshot it was replayed. Concurrent publishes proceed in
// parallel — MQTT orders messages per publisher connection only, and each
// publisher's own publishes stay ordered because its read section
// completes before it issues the next. (session.deliver is a non-blocking
// queue insert and never acquires Broker.mu, so a fenced writer is only
// ever waiting on queue inserts and buffered WAL appends.)
//
// Routing itself is a single lock-free cache probe on the hot repeat-topic
// path (topic → matched set, keyed on the snapshot epoch, carrying the
// topic's accounting counter so even pubMu is skipped); a miss falls back
// to the snapshot's zero-alloc matcher and refreshes the cache.
//
// Deliveries whose effective QoS is 0 — the identical frame for every such
// subscriber — share one pre-encoded byte slice instead of per-subscriber
// packet allocation and re-encoding. QoS1 deliveries still carry a packet
// per subscriber, since each session assigns its own packet ID. Subscriber
// sets above fanoutThreshold are split across the fan-out helper pool.
func (b *Broker) publish(p *wire.PublishPacket, fromClientID string) {
	_ = fromClientID // brokers may loop messages back to the publisher; MQTT allows it
	sh := b.gate.enter()
	if p.Retain {
		b.retainedMu.Lock()
		if len(p.Payload) == 0 {
			if _, ok := b.retained[p.Topic]; ok {
				delete(b.retained, p.Topic)
				b.retainedCount.Add(-1)
			}
		} else {
			if _, ok := b.retained[p.Topic]; !ok {
				b.retainedCount.Add(1)
			}
			b.retained[p.Topic] = retainedMsg{payload: append([]byte(nil), p.Payload...), qos: p.QoS}
		}
		// Journaled under retainedMu so WAL order equals map order.
		b.persistRetain(p)
		b.retainedMu.Unlock()
	}

	snap := b.routes.Load()
	var subs []routeSub
	var tc *topicCount
	var valid bool
	if v := b.rcache.lookup(p.Topic, snap.epoch); v != nil {
		sh.cacheHits.Add(1)
		subs, tc, valid = v.subs, v.tc, v.valid
	} else {
		sh.cacheMisses.Add(1)
		mb := getMatchBuf()
		matched := snap.match(p.Topic, mb)
		tc = b.topicCounter(p.Topic)
		valid = wire.ValidateTopicName(p.Topic) == nil
		subs = b.rcache.store(p.Topic, snap.epoch, matched, tc, valid)
		mb.release()
	}
	if tc != nil {
		tc.bump()
	}

	var droppedHere int64
	switch {
	case len(subs) == 0:
	case !valid:
		// Unroutable topic (possible only via the internal Publish API):
		// no frame can be encoded for it, so every matched subscriber —
		// including QoS1 ones, which previously got a packet whose encode
		// failure killed their connection — misses this message. Count
		// them all as dropped.
		droppedHere = int64(len(subs))
		b.routeDropped.Add(droppedHere)
	case len(subs) >= fanoutThreshold && b.fanoutQ != nil:
		droppedHere = b.fanoutParallel(p, subs)
	default:
		droppedHere = b.fanoutSerial(p, subs)
	}
	b.gate.exit(sh)
	if b.metrics != nil && droppedHere > 0 {
		b.metrics.dropped.Add(droppedHere)
	}
}

// fanoutSerial delivers to each matched subscriber on the publisher's own
// goroutine and returns the number of drops.
func (b *Broker) fanoutSerial(p *wire.PublishPacket, subs []routeSub) int64 {
	var dropped int64
	var frame []byte // shared QoS0 frame, encoded on first need
	for i, sub := range subs {
		qos := minQoS(p.QoS, sub.qos)
		// Retain flag is false on normal routed deliveries (spec
		// 3.3.1-9); it is true only for retained replay at subscribe
		// time.
		if qos == wire.QoS0 {
			if frame == nil {
				var err error
				frame, err = wire.AppendEncodePublish(nil, p.Topic, p.Payload)
				if err != nil {
					// Unencodable message (oversized payload; invalid
					// topics were already rejected before fan-out): every
					// remaining matched subscriber misses this message,
					// so count them all — not just one — as dropped.
					remaining := int64(len(subs) - i)
					dropped += remaining
					b.routeDropped.Add(remaining)
					break
				}
			}
			if !sub.session.deliverFrame(frame) {
				dropped++
			}
			continue
		}
		out := &wire.PublishPacket{Topic: p.Topic, Payload: p.Payload, QoS: qos}
		if !sub.session.deliver(out) {
			dropped++
		}
	}
	return dropped
}

// --- parallel fan-out ---

const (
	// fanoutThreshold is the subscriber-set size above which one publish is
	// split across the helper pool instead of serialized on the publisher.
	fanoutThreshold = 256
	// fanoutChunk is the unit of work helpers claim from a job.
	fanoutChunk = 64
	// maxFanoutHelpers bounds the helper pool; fan-out is queue inserts,
	// not computation, so a few helpers saturate the memory system.
	maxFanoutHelpers = 4
)

// fanoutHelperCount sizes the pool: leave the publisher its own proc, and
// don't bother on single-proc hosts where helpers would only timeshare.
func fanoutHelperCount() int {
	n := runtime.GOMAXPROCS(0) - 1
	if n > maxFanoutHelpers {
		n = maxFanoutHelpers
	}
	if n < 0 {
		n = 0
	}
	return n
}

// fanoutJob is one oversized publish being delivered cooperatively. The
// publisher and any helpers that picked the job up claim fanoutChunk-sized
// index ranges via cursor; whoever completes the last chunk closes doneCh.
// The publisher always participates, so a job completes even if every
// helper is busy and nobody dequeues it.
type fanoutJob struct {
	topic   string
	payload []byte
	qos     wire.QoS
	frame   []byte
	subs    []routeSub
	cursor  atomic.Int64
	done    atomic.Int64
	dropped atomic.Int64
	doneCh  chan struct{}
}

func (j *fanoutJob) run() {
	total := int64(len(j.subs))
	for {
		start := int(j.cursor.Add(fanoutChunk)) - fanoutChunk
		if start >= len(j.subs) {
			return
		}
		end := start + fanoutChunk
		if end > len(j.subs) {
			end = len(j.subs)
		}
		var dropped int64
		for _, sub := range j.subs[start:end] {
			qos := minQoS(j.qos, sub.qos)
			if qos == wire.QoS0 {
				if !sub.session.deliverFrame(j.frame) {
					dropped++
				}
				continue
			}
			out := &wire.PublishPacket{Topic: j.topic, Payload: j.payload, QoS: qos}
			if !sub.session.deliver(out) {
				dropped++
			}
		}
		if dropped != 0 {
			j.dropped.Add(dropped)
		}
		if j.done.Add(int64(end-start)) == total {
			close(j.doneCh)
		}
	}
}

// fanoutParallel splits delivery of one publish across the helper pool.
// It runs inside the publisher's gate read section: helpers work on the
// job object itself, not on broker state, so the section's exclusion
// argument is untouched — the publisher does not exit until every chunk
// (its own and the helpers') has completed.
func (b *Broker) fanoutParallel(p *wire.PublishPacket, subs []routeSub) int64 {
	frame, err := wire.AppendEncodePublish(nil, p.Topic, p.Payload)
	if err != nil {
		// Unencodable message: nothing can be delivered (see fanoutSerial).
		b.routeDropped.Add(int64(len(subs)))
		return int64(len(subs))
	}
	j := &fanoutJob{
		topic:   p.Topic,
		payload: p.Payload,
		qos:     p.QoS,
		frame:   frame,
		subs:    subs,
		doneCh:  make(chan struct{}),
	}
	// Offer the job to up to chunks-1 helpers without ever blocking; the
	// publisher keeps whatever the helpers don't take.
	offers := (len(subs)+fanoutChunk-1)/fanoutChunk - 1
	if offers > maxFanoutHelpers {
		offers = maxFanoutHelpers
	}
	for i := 0; i < offers; i++ {
		select {
		case b.fanoutQ <- j:
		default:
			i = offers // queue full: helpers are saturated
		}
	}
	j.run()
	<-j.doneCh
	return j.dropped.Load()
}

// startFanoutHelpers launches n helper goroutines. Helpers only park
// between jobs — a claimed chunk always runs to completion — so Close can
// stop them without stranding a publish mid-delivery.
func (b *Broker) startFanoutHelpers(n int) {
	if n <= 0 {
		return
	}
	b.fanoutQ = make(chan *fanoutJob, 2*n)
	b.fanoutStop = make(chan struct{})
	for i := 0; i < n; i++ {
		go func() {
			for {
				select {
				case j := <-b.fanoutQ:
					j.run()
				case <-b.fanoutStop:
					return
				}
			}
		}()
	}
}

// writerBufSize is the per-connection outbound coalescing buffer. 64 KiB
// quarters the flush syscalls of the previous 16 KiB under saturating
// QoS0 fan-out while staying a modest per-connection cost.
const writerBufSize = 64 << 10

// writeOut serializes one outbound item into the connection's buffered
// writer, reporting how many application messages it wrote (0 or 1) so
// the writer loop can bump the delivery counters once per batch.
func (b *Broker) writeOut(bw *bufio.Writer, op outPacket) (int64, error) {
	if op.frame != nil {
		if _, err := bw.Write(op.frame); err != nil {
			return 0, err
		}
		return 1, nil
	}
	if err := wire.WritePacket(bw, op.pkt); err != nil {
		return 0, err
	}
	if op.pkt.Type() == wire.PUBLISH {
		return 1, nil
	}
	return 0, nil
}

func (b *Broker) noteDelivered(n int64) {
	if n == 0 {
		return
	}
	b.delivered.Add(n)
	if b.metrics != nil {
		b.metrics.delivered.Add(n)
	}
}

// topicCounter resolves the (bounded) per-topic publish counter for topic,
// installing one on first sight; it returns nil for broker-internal topics
// ($SYS, …) so self-statistics never feed back into the statistics. The
// publish path calls it only on route-cache misses — the counter pointer
// rides in the cache entry, so steady-state publishes bump it with a plain
// atomic add and never touch pubMu at all.
func (b *Broker) topicCounter(topic string) *topicCount {
	if strings.HasPrefix(topic, "$") {
		return nil
	}
	b.pubMu.RLock()
	tc, ok := b.pubByTopic[topic]
	b.pubMu.RUnlock()
	if ok {
		return tc
	}
	b.pubMu.Lock()
	defer b.pubMu.Unlock()
	key := topic
	tc, ok = b.pubByTopic[key]
	if !ok && len(b.pubByTopic) >= maxPublishTopics {
		key = overflowTopicKey
		tc, ok = b.pubByTopic[key]
	}
	if !ok {
		tc = &topicCount{}
		if b.metrics != nil {
			tc.metric = b.metrics.reg.Counter("ifot_broker_publish_total",
				"publishes routed per topic (bounded cardinality)", telemetry.L("topic", key))
		}
		b.pubByTopic[key] = tc
	}
	return tc
}

// PublishCounts snapshots the bounded per-topic publish counters. Like
// Stats, it never takes a write lock, so scraping cannot stall publishes.
func (b *Broker) PublishCounts() map[string]int64 {
	b.pubMu.RLock()
	defer b.pubMu.RUnlock()
	out := make(map[string]int64, len(b.pubByTopic))
	for k, tc := range b.pubByTopic {
		out[k] = tc.n.Load()
	}
	return out
}

func (b *Broker) handleSubscribe(sess *session, p *wire.SubscribePacket) {
	codes := make([]byte, len(p.Subscriptions))

	// Snapshot swap and retained replay happen under one gate writer
	// fence, which excludes every publish read section whole (spec 3.3.1-6
	// replay consistency): the replayed snapshot reflects exactly the
	// publishes whose store+route completed against the old routing
	// snapshot, and every later publish routes against the new one and
	// delivers live. The live stream can therefore never run behind the
	// replay. Builder registration and the snapshot rebuild stay outside
	// the fence (under mu only) so publishes flow during the copy.
	b.mu.Lock()
	for i, sub := range p.Subscriptions {
		granted := minQoS(sub.QoS, b.opts.MaxQoS)
		b.trie.subscribe(sub.TopicFilter, sess, granted)
		sess.addSubscription(sub.TopicFilter, granted)
		b.persistSub(sess, sub.TopicFilter, granted)
		codes[i] = byte(granted)
	}
	// SUBACK precedes retained replay in the session queue (spec 3.8.4).
	sess.send(&wire.SubackPacket{PacketID: p.PacketID, ReturnCodes: codes})

	tbl := b.trie.build(b.routeEpoch.Add(1))
	b.gate.lock()
	b.routes.Store(tbl)
	b.retainedMu.Lock()
	for i, sub := range p.Subscriptions {
		for topic, msg := range b.retained {
			if wire.MatchTopic(sub.TopicFilter, topic) {
				sess.deliver(&wire.PublishPacket{
					Topic:   topic,
					Payload: msg.payload,
					QoS:     minQoS(msg.qos, wire.QoS(codes[i])),
					Retain:  true,
				})
			}
		}
	}
	b.retainedMu.Unlock()
	b.gate.unlock()
	b.mu.Unlock()
}

func (b *Broker) handleUnsubscribe(sess *session, p *wire.UnsubscribePacket) {
	b.mu.Lock()
	removed := false
	for _, f := range p.TopicFilters {
		if b.trie.unsubscribe(f, sess.clientID) {
			removed = true
		}
		sess.removeSubscription(f)
		b.persistUnsub(sess, f)
	}
	if removed {
		b.swapRoutesLocked()
	}
	b.mu.Unlock()
	sess.send(&wire.AckPacket{PacketType: wire.UNSUBACK, PacketID: p.PacketID})
}

func minQoS(a, b wire.QoS) wire.QoS {
	if a < b {
		return a
	}
	return b
}
