// Package broker implements an MQTT 3.1.1 message broker. It is the IFoT
// middleware's Broker class (the paper's prototype used Mosquitto; this is
// a from-scratch conforming replacement supporting QoS 0/1 subscriptions,
// QoS 0/1/2 inbound publishes, retained messages, persistent sessions,
// wills, and `+`/`#` wildcard filters).
package broker

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"github.com/ifot-middleware/ifot/internal/wire"
)

// Errors returned by the broker.
var (
	ErrClosed = errors.New("broker: closed")
)

// Authenticator decides whether a CONNECT with the given credentials is
// accepted. username is empty when the client sent none.
type Authenticator func(clientID, username string, password []byte) bool

// Options configures a Broker. The zero value is usable.
type Options struct {
	// MaxQoS caps the QoS granted to subscriptions (default QoS1).
	MaxQoS wire.QoS
	// MaxPacketSize bounds inbound packets in bytes (default 1 MiB).
	MaxPacketSize int
	// SessionQueueSize is the per-connection outbound queue length
	// (default 256).
	SessionQueueSize int
	// Authenticator, when set, gates connections.
	Authenticator Authenticator
	// Logger receives diagnostic messages; nil silences them.
	Logger *log.Logger
}

func (o Options) withDefaults() Options {
	if o.MaxQoS == 0 {
		o.MaxQoS = wire.QoS1
	}
	if o.MaxQoS > wire.QoS1 {
		o.MaxQoS = wire.QoS1 // outbound QoS2 delivery is not implemented
	}
	if o.MaxPacketSize <= 0 {
		o.MaxPacketSize = 1 << 20
	}
	if o.SessionQueueSize <= 0 {
		o.SessionQueueSize = 256
	}
	return o
}

// Stats is a snapshot of broker counters.
type Stats struct {
	ConnectedClients  int
	Sessions          int
	Subscriptions     int
	RetainedMessages  int
	MessagesReceived  int64
	MessagesDelivered int64
	MessagesDropped   int64
}

type retainedMsg struct {
	payload []byte
	qos     wire.QoS
}

// Broker is an MQTT broker. Create one with New, feed it connections with
// Serve or ServeConn, and stop it with Close.
type Broker struct {
	opts Options

	mu        sync.Mutex
	sessions  map[string]*session // all sessions (connected and parked)
	conns     map[string]net.Conn // live connection per client ID
	retained  map[string]retainedMsg
	listeners []net.Listener
	closed    bool

	received  int64
	delivered int64

	trie *subTrie
	wg   sync.WaitGroup
}

// New creates a broker with the given options.
func New(opts Options) *Broker {
	return &Broker{
		opts:     opts.withDefaults(),
		sessions: make(map[string]*session),
		conns:    make(map[string]net.Conn),
		retained: make(map[string]retainedMsg),
		trie:     newSubTrie(),
	}
}

// Serve accepts connections from l until the broker or listener is closed.
func (b *Broker) Serve(l net.Listener) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	b.listeners = append(b.listeners, l)
	b.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			b.mu.Lock()
			closed := b.closed
			b.mu.Unlock()
			if closed {
				return ErrClosed
			}
			return fmt.Errorf("broker accept: %w", err)
		}
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.handleConn(conn)
		}()
	}
}

// ServeConn runs the MQTT protocol on a single already-accepted connection,
// returning when the connection ends. It is useful with in-memory pipes.
func (b *Broker) ServeConn(conn net.Conn) {
	b.wg.Add(1)
	defer b.wg.Done()
	b.handleConn(conn)
}

// Close stops all listeners, disconnects every client, and waits for the
// connection handlers to finish.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	listeners := b.listeners
	conns := make([]net.Conn, 0, len(b.conns))
	for _, c := range b.conns {
		conns = append(conns, c)
	}
	b.mu.Unlock()

	for _, l := range listeners {
		_ = l.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	b.wg.Wait()
	return nil
}

// Stats returns a snapshot of broker counters.
func (b *Broker) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	var dropped int64
	for _, s := range b.sessions {
		dropped += s.dropped()
	}
	return Stats{
		ConnectedClients:  len(b.conns),
		Sessions:          len(b.sessions),
		Subscriptions:     b.trie.countSubscriptions(),
		RetainedMessages:  len(b.retained),
		MessagesReceived:  b.received,
		MessagesDelivered: b.delivered,
		MessagesDropped:   dropped,
	}
}

func (b *Broker) logf(format string, args ...any) {
	if b.opts.Logger != nil {
		b.opts.Logger.Printf(format, args...)
	}
}

// handleConn drives one client connection through CONNECT and the steady
// state loop.
func (b *Broker) handleConn(conn net.Conn) {
	defer conn.Close()

	// The first packet must be CONNECT; give slow clients 10 seconds.
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	pkt, err := wire.ReadPacket(conn, b.opts.MaxPacketSize)
	if err != nil {
		return
	}
	connect, ok := pkt.(*wire.ConnectPacket)
	if !ok {
		return
	}
	if connect.ProtocolLevel != wire.ProtocolLevel311 && connect.ProtocolLevel != wire.ProtocolLevel31 {
		_ = wire.WritePacket(conn, &wire.ConnackPacket{Code: wire.ConnRefusedVersion})
		return
	}
	if connect.ClientID == "" && !connect.CleanSession {
		_ = wire.WritePacket(conn, &wire.ConnackPacket{Code: wire.ConnRefusedIdentifier})
		return
	}
	if connect.ClientID == "" {
		connect.ClientID = fmt.Sprintf("anon-%p", conn)
	}
	if b.opts.Authenticator != nil && !b.opts.Authenticator(connect.ClientID, connect.Username, connect.Password) {
		_ = wire.WritePacket(conn, &wire.ConnackPacket{Code: wire.ConnRefusedBadAuth})
		return
	}

	sess, sessionPresent, err := b.registerSession(connect, conn)
	if err != nil {
		return
	}
	outbound, resend, gen := sess.attach(b.opts.SessionQueueSize)

	if err := wire.WritePacket(conn, &wire.ConnackPacket{SessionPresent: sessionPresent, Code: wire.ConnAccepted}); err != nil {
		b.unregisterConn(sess, conn, gen)
		return
	}
	b.logf("broker: client %q connected (persistent=%v)", sess.clientID, sess.persistent)

	// Redeliver unacked and offline-queued QoS1 messages (already tracked
	// in the inflight window, so bypass deliver's ID allocation).
	for _, p := range resend {
		sess.send(p)
	}

	// Writer goroutine: drains the outbound queue into the socket.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for p := range outbound {
			if err := wire.WritePacket(conn, p); err != nil {
				return
			}
			if p.Type() == wire.PUBLISH {
				b.mu.Lock()
				b.delivered++
				b.mu.Unlock()
			}
		}
	}()

	will := willOf(connect)
	normal := b.readLoop(conn, sess, connect.KeepAlive)

	// Tear down: detach so no further deliveries target this connection,
	// then close the outbound channel to stop the writer.
	b.unregisterConn(sess, conn, gen)
	close(outbound)
	_ = conn.Close()
	<-writerDone

	if !normal && will != nil {
		b.route(will, sess.clientID)
	}
	b.logf("broker: client %q disconnected (graceful=%v)", sess.clientID, normal)
}

// willOf extracts the will message from a CONNECT, if any.
func willOf(c *wire.ConnectPacket) *wire.PublishPacket {
	if !c.WillFlag {
		return nil
	}
	return &wire.PublishPacket{
		Topic:   c.WillTopic,
		Payload: c.WillMessage,
		QoS:     c.WillQoS,
		Retain:  c.WillRetain,
	}
}

// registerSession creates or revives the session for a CONNECT, taking over
// any existing connection with the same client ID.
func (b *Broker) registerSession(connect *wire.ConnectPacket, conn net.Conn) (*session, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, false, ErrClosed
	}

	if old, ok := b.conns[connect.ClientID]; ok {
		// Session takeover (spec 3.1.4): disconnect the existing client.
		_ = old.Close()
		delete(b.conns, connect.ClientID)
	}

	sess, existed := b.sessions[connect.ClientID]
	sessionPresent := false
	if connect.CleanSession || !existed {
		if existed {
			b.trie.removeAll(connect.ClientID)
		}
		sess = newSession(connect.ClientID, !connect.CleanSession)
		b.sessions[connect.ClientID] = sess
	} else {
		sessionPresent = true
	}
	b.conns[connect.ClientID] = conn
	return sess, sessionPresent, nil
}

// unregisterConn detaches a finished connection and discards clean-session
// state.
func (b *Broker) unregisterConn(sess *session, conn net.Conn, gen uint64) {
	sess.detach(gen)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.conns[sess.clientID] == conn {
		delete(b.conns, sess.clientID)
		if !sess.persistent {
			delete(b.sessions, sess.clientID)
			b.trie.removeAll(sess.clientID)
		}
	}
}

// readLoop processes inbound packets until the connection ends. It reports
// whether the client disconnected gracefully (DISCONNECT packet).
func (b *Broker) readLoop(conn net.Conn, sess *session, keepAlive uint16) (graceful bool) {
	for {
		if keepAlive > 0 {
			deadline := time.Duration(keepAlive) * time.Second * 3 / 2
			_ = conn.SetReadDeadline(time.Now().Add(deadline))
		} else {
			_ = conn.SetReadDeadline(time.Time{})
		}
		pkt, err := wire.ReadPacket(conn, b.opts.MaxPacketSize)
		if err != nil {
			return false
		}
		switch p := pkt.(type) {
		case *wire.PublishPacket:
			b.handlePublish(sess, p)
		case *wire.AckPacket:
			switch p.PacketType {
			case wire.PUBACK:
				sess.ack(p.PacketID)
			case wire.PUBREL:
				sess.releaseIncomingQoS2(p.PacketID)
				sess.send(&wire.AckPacket{PacketType: wire.PUBCOMP, PacketID: p.PacketID})
			case wire.PUBREC, wire.PUBCOMP:
				// Outbound QoS2 is never generated; ignore.
			}
		case *wire.SubscribePacket:
			b.handleSubscribe(sess, p)
		case *wire.UnsubscribePacket:
			b.handleUnsubscribe(sess, p)
		case *wire.PingreqPacket:
			sess.send(&wire.PingrespPacket{})
		case *wire.DisconnectPacket:
			return true
		case *wire.ConnectPacket:
			// Second CONNECT is a protocol violation (spec 3.1.0-2).
			return false
		default:
			return false
		}
	}
}

func (b *Broker) handlePublish(sess *session, p *wire.PublishPacket) {
	b.mu.Lock()
	b.received++
	b.mu.Unlock()

	deliver := true
	switch p.QoS {
	case wire.QoS1:
		sess.send(&wire.AckPacket{PacketType: wire.PUBACK, PacketID: p.PacketID})
	case wire.QoS2:
		deliver = sess.markIncomingQoS2(p.PacketID)
		sess.send(&wire.AckPacket{PacketType: wire.PUBREC, PacketID: p.PacketID})
	}
	if !deliver {
		return
	}

	if p.Retain {
		b.mu.Lock()
		if len(p.Payload) == 0 {
			delete(b.retained, p.Topic)
		} else {
			b.retained[p.Topic] = retainedMsg{payload: append([]byte(nil), p.Payload...), qos: p.QoS}
		}
		b.mu.Unlock()
	}
	b.route(p, sess.clientID)
}

// route fans a message out to all matching subscribers.
func (b *Broker) route(p *wire.PublishPacket, fromClientID string) {
	for _, sub := range b.trie.match(p.Topic) {
		out := &wire.PublishPacket{
			Topic:   p.Topic,
			Payload: p.Payload,
			QoS:     minQoS(p.QoS, sub.qos),
			// Retain flag is false on normal routed deliveries
			// (spec 3.3.1-9); it is true only for retained-message
			// replay at subscribe time.
		}
		sub.session.deliver(out)
		_ = fromClientID // brokers may loop messages back to the publisher; MQTT allows it
	}
}

func (b *Broker) handleSubscribe(sess *session, p *wire.SubscribePacket) {
	codes := make([]byte, len(p.Subscriptions))
	for i, sub := range p.Subscriptions {
		granted := minQoS(sub.QoS, b.opts.MaxQoS)
		b.trie.subscribe(sub.TopicFilter, sess, granted)
		sess.addSubscription(sub.TopicFilter, granted)
		codes[i] = byte(granted)
	}
	sess.send(&wire.SubackPacket{PacketID: p.PacketID, ReturnCodes: codes})

	// Replay retained messages matching the new filters (spec 3.3.1-6).
	b.mu.Lock()
	type replay struct {
		topic string
		msg   retainedMsg
		qos   wire.QoS
	}
	var replays []replay
	for i, sub := range p.Subscriptions {
		for topic, msg := range b.retained {
			if wire.MatchTopic(sub.TopicFilter, topic) {
				replays = append(replays, replay{topic: topic, msg: msg, qos: wire.QoS(codes[i])})
			}
		}
	}
	b.mu.Unlock()
	for _, r := range replays {
		sess.deliver(&wire.PublishPacket{
			Topic:   r.topic,
			Payload: r.msg.payload,
			QoS:     minQoS(r.msg.qos, r.qos),
			Retain:  true,
		})
	}
}

func (b *Broker) handleUnsubscribe(sess *session, p *wire.UnsubscribePacket) {
	for _, f := range p.TopicFilters {
		b.trie.unsubscribe(f, sess.clientID)
		sess.removeSubscription(f)
	}
	sess.send(&wire.AckPacket{PacketType: wire.UNSUBACK, PacketID: p.PacketID})
}

func minQoS(a, b wire.QoS) wire.QoS {
	if a < b {
		return a
	}
	return b
}
