// Package broker implements an MQTT 3.1.1 message broker. It is the IFoT
// middleware's Broker class (the paper's prototype used Mosquitto; this is
// a from-scratch conforming replacement supporting QoS 0/1 subscriptions,
// QoS 0/1/2 inbound publishes, retained messages, persistent sessions,
// wills, and `+`/`#` wildcard filters).
package broker

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ifot-middleware/ifot/internal/store"
	"github.com/ifot-middleware/ifot/internal/telemetry"
	"github.com/ifot-middleware/ifot/internal/wire"
)

// Errors returned by the broker.
var (
	ErrClosed = errors.New("broker: closed")
)

// Authenticator decides whether a CONNECT with the given credentials is
// accepted. username is empty when the client sent none.
type Authenticator func(clientID, username string, password []byte) bool

// Options configures a Broker. The zero value is usable.
type Options struct {
	// MaxQoS caps the QoS granted to subscriptions (default QoS1).
	MaxQoS wire.QoS
	// MaxPacketSize bounds inbound packets in bytes (default 1 MiB).
	MaxPacketSize int
	// SessionQueueSize is the per-connection outbound queue length
	// (default 256).
	SessionQueueSize int
	// Authenticator, when set, gates connections.
	Authenticator Authenticator
	// Logger receives diagnostic messages; nil silences them.
	Logger *log.Logger
	// Registry, when set, receives broker metrics (message counters,
	// per-topic publish counts, connection gauges) for Prometheus/MQTT
	// exposition.
	Registry *telemetry.Registry
	// Store, when set, makes broker state durable: retained messages,
	// persistent sessions (subscriptions, QoS1 inflight/queued messages)
	// are journaled to the store and recovered by Open. The broker does
	// not close the store; the caller that opened it does, after Close.
	// Nil (the default) keeps today's purely in-memory behavior.
	Store store.Store
	// SnapshotBytes is the live-WAL size that triggers automatic
	// snapshot compaction (default 4 MiB; only meaningful with Store).
	SnapshotBytes int64
}

func (o Options) withDefaults() Options {
	if o.MaxQoS == 0 {
		o.MaxQoS = wire.QoS1
	}
	if o.MaxQoS > wire.QoS1 {
		o.MaxQoS = wire.QoS1 // outbound QoS2 delivery is not implemented
	}
	if o.MaxPacketSize <= 0 {
		o.MaxPacketSize = 1 << 20
	}
	if o.SessionQueueSize <= 0 {
		o.SessionQueueSize = 256
	}
	if o.SnapshotBytes <= 0 {
		o.SnapshotBytes = 4 << 20
	}
	return o
}

// Stats is a snapshot of broker counters.
type Stats struct {
	ConnectedClients  int
	Sessions          int
	Subscriptions     int
	RetainedMessages  int
	MessagesReceived  int64
	MessagesDelivered int64
	MessagesDropped   int64
}

type retainedMsg struct {
	payload []byte
	qos     wire.QoS
}

// Broker is an MQTT broker. Create one with New, feed it connections with
// Serve or ServeConn, and stop it with Close.
//
// Locking model (read-mostly routing). mu is an RWMutex: the publish hot
// path takes only the read lock, so concurrent publishes route and fan out
// in parallel; subscribe, unsubscribe, session churn, and shutdown are the
// rare writers. The store+route atomicity invariant for retained messages
// (see publish) is preserved because a writer acquiring mu excludes every
// in-flight publish read section whole: a subscriber registering under the
// write lock observes each concurrent publish either entirely (retained
// stored AND fanned out) or not at all. Go's RWMutex blocks new readers
// once a writer waits, so subscribes cannot starve under publish load.
//
// Lock order: mu ⊃ {trie.mu, retainedMu, pubMu, session.mu}. Counters
// (received, delivered, per-topic accounting) are atomics so neither the
// publish path nor the per-connection writer goroutines ever take mu.
type Broker struct {
	opts  Options
	start time.Time

	mu        sync.RWMutex
	sessions  map[string]*session // all sessions (connected and parked)
	conns     map[string]net.Conn // live connection per client ID
	listeners []net.Listener
	closed    bool

	// retainedMu guards the retained map. Publishes mutate it while
	// holding only mu.RLock, so map access needs this inner mutex; the
	// ordering of store against route is still provided by mu (above).
	retainedMu sync.Mutex
	retained   map[string]retainedMsg

	received  atomic.Int64
	delivered atomic.Int64

	// anonSeq feeds generated client IDs for anonymous clean-session
	// connects. A monotonic counter cannot collide (unlike the previous
	// pointer-formatted IDs, which could recur after allocator reuse and
	// silently take over a live session).
	anonSeq atomic.Uint64

	// pubByTopic counts publishes per topic, bounded to maxPublishTopics
	// distinct keys (overflow lands in overflowTopicKey) so an adversarial
	// topic stream cannot grow broker memory or metric cardinality.
	// pubMu is read-locked to find an existing counter (the common case);
	// the write lock is taken only to install a new topic's counter.
	pubMu      sync.RWMutex
	pubByTopic map[string]*topicCount

	trie    *subTrie
	wg      sync.WaitGroup
	metrics *brokerMetrics

	// persist is non-nil when Options.Store is set; it owns the WAL
	// journal handle and the message-ID sequence (see persist.go).
	persist *persister
}

// topicCount is one topic's publish accounting: a lock-free counter plus
// the telemetry series handle (nil when no Registry is configured).
type topicCount struct {
	n      atomic.Int64
	metric *telemetry.Counter
}

func (tc *topicCount) bump() {
	tc.n.Add(1)
	if tc.metric != nil {
		tc.metric.Inc()
	}
}

// maxPublishTopics bounds the per-topic publish accounting (and the
// telemetry series derived from it).
const maxPublishTopics = 64

// overflowTopicKey aggregates publishes on topics beyond maxPublishTopics.
const overflowTopicKey = "~other"

// New creates a broker with the given options. With Options.Store set it
// panics on an unrecoverable store (use Open to handle that error).
func New(opts Options) *Broker {
	b, err := Open(opts)
	if err != nil {
		panic(err)
	}
	return b
}

// Open creates a broker and, when Options.Store is set, recovers durable
// state (retained messages, persistent sessions, QoS1 queues) from it
// before any connection is accepted.
func Open(opts Options) (*Broker, error) {
	b := &Broker{
		opts:       opts.withDefaults(),
		start:      time.Now(),
		sessions:   make(map[string]*session),
		conns:      make(map[string]net.Conn),
		retained:   make(map[string]retainedMsg),
		pubByTopic: make(map[string]*topicCount),
		trie:       newSubTrie(),
	}
	if b.opts.Registry != nil {
		b.metrics = newBrokerMetrics(b.opts.Registry, b)
	}
	if st := b.opts.Store; st != nil {
		b.persist = &persister{logger: b.opts.Logger}
		if err := b.recoverState(st); err != nil {
			return nil, err
		}
		b.persist.journal = store.NewJournal(st, b.captureState, b.opts.SnapshotBytes, b.opts.Logger)
	}
	return b, nil
}

// Uptime reports how long ago the broker was created.
func (b *Broker) Uptime() time.Duration { return time.Since(b.start) }

// brokerMetrics holds the broker's telemetry handles. Per-topic counter
// handles live on the topicCount entries in Broker.pubByTopic.
type brokerMetrics struct {
	reg       *telemetry.Registry
	received  *telemetry.Counter
	delivered *telemetry.Counter
	dropped   *telemetry.Counter
}

func newBrokerMetrics(reg *telemetry.Registry, b *Broker) *brokerMetrics {
	m := &brokerMetrics{
		reg:       reg,
		received:  reg.Counter("ifot_broker_messages_received_total", "PUBLISH packets received from clients"),
		delivered: reg.Counter("ifot_broker_messages_delivered_total", "PUBLISH packets written to subscriber connections"),
		dropped:   reg.Counter("ifot_broker_messages_dropped_total", "messages not accepted by a matching session (queue full or offline)"),
	}
	reg.GaugeFunc("ifot_broker_clients_connected", "currently connected clients",
		func() float64 { return float64(b.Stats().ConnectedClients) })
	reg.GaugeFunc("ifot_broker_sessions", "sessions including parked persistent ones",
		func() float64 { return float64(b.Stats().Sessions) })
	reg.GaugeFunc("ifot_broker_subscriptions", "active subscriptions",
		func() float64 { return float64(b.Stats().Subscriptions) })
	reg.GaugeFunc("ifot_broker_retained_messages", "retained messages stored",
		func() float64 { return float64(b.Stats().RetainedMessages) })
	reg.GaugeFunc("ifot_broker_uptime_seconds", "seconds since the broker was created",
		func() float64 { return b.Uptime().Seconds() })
	return m
}

// Serve accepts connections from l until the broker or listener is closed.
func (b *Broker) Serve(l net.Listener) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	b.listeners = append(b.listeners, l)
	b.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			b.mu.RLock()
			closed := b.closed
			b.mu.RUnlock()
			if closed {
				return ErrClosed
			}
			return fmt.Errorf("broker accept: %w", err)
		}
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.handleConn(conn)
		}()
	}
}

// ServeConn runs the MQTT protocol on a single already-accepted connection,
// returning when the connection ends. It is useful with in-memory pipes.
func (b *Broker) ServeConn(conn net.Conn) {
	b.wg.Add(1)
	defer b.wg.Done()
	b.handleConn(conn)
}

// Close stops all listeners, disconnects every client, and waits for the
// connection handlers to finish.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	listeners := b.listeners
	conns := make([]net.Conn, 0, len(b.conns))
	for _, c := range b.conns {
		conns = append(conns, c)
	}
	b.mu.Unlock()

	for _, l := range listeners {
		_ = l.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	b.wg.Wait()
	if b.persist != nil {
		// Stop the snapshot goroutine. The store itself (and its final
		// flush/fsync) belongs to whoever opened it.
		b.persist.journal.Close()
	}
	return nil
}

// Stats returns a snapshot of broker counters. It takes only read locks,
// so a slow or frequent metrics scrape never stalls concurrent publishes.
func (b *Broker) Stats() Stats {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var dropped int64
	for _, s := range b.sessions {
		dropped += s.dropped()
	}
	b.retainedMu.Lock()
	retained := len(b.retained)
	b.retainedMu.Unlock()
	return Stats{
		ConnectedClients:  len(b.conns),
		Sessions:          len(b.sessions),
		Subscriptions:     b.trie.countSubscriptions(),
		RetainedMessages:  retained,
		MessagesReceived:  b.received.Load(),
		MessagesDelivered: b.delivered.Load(),
		MessagesDropped:   dropped,
	}
}

func (b *Broker) logf(format string, args ...any) {
	if b.opts.Logger != nil {
		b.opts.Logger.Printf(format, args...)
	}
}

// handleConn drives one client connection through CONNECT and the steady
// state loop.
func (b *Broker) handleConn(conn net.Conn) {
	defer conn.Close()

	// The first packet must be CONNECT; give slow clients 10 seconds.
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	pkt, err := wire.ReadPacket(conn, b.opts.MaxPacketSize)
	if err != nil {
		return
	}
	connect, ok := pkt.(*wire.ConnectPacket)
	if !ok {
		return
	}
	if connect.ProtocolLevel != wire.ProtocolLevel311 && connect.ProtocolLevel != wire.ProtocolLevel31 {
		_ = wire.WritePacket(conn, &wire.ConnackPacket{Code: wire.ConnRefusedVersion})
		return
	}
	if connect.ClientID == "" && !connect.CleanSession {
		_ = wire.WritePacket(conn, &wire.ConnackPacket{Code: wire.ConnRefusedIdentifier})
		return
	}
	if connect.ClientID == "" {
		connect.ClientID = fmt.Sprintf("anon-%d", b.anonSeq.Add(1))
	}
	if b.opts.Authenticator != nil && !b.opts.Authenticator(connect.ClientID, connect.Username, connect.Password) {
		_ = wire.WritePacket(conn, &wire.ConnackPacket{Code: wire.ConnRefusedBadAuth})
		return
	}

	sess, sessionPresent, err := b.registerSession(connect, conn)
	if err != nil {
		return
	}
	outbound, resend, gen := sess.attach(b.opts.SessionQueueSize)

	if err := wire.WritePacket(conn, &wire.ConnackPacket{SessionPresent: sessionPresent, Code: wire.ConnAccepted}); err != nil {
		b.unregisterConn(sess, conn, gen)
		return
	}
	b.logf("broker: client %q connected (persistent=%v)", sess.clientID, sess.persistent)

	// Redeliver unacked and offline-queued QoS1 messages (already tracked
	// in the inflight window, so bypass deliver's ID allocation).
	for _, p := range resend {
		sess.send(p)
	}

	// Writer goroutine: drains the outbound queue into the socket through
	// a buffered writer, flushing only when the queue is momentarily empty
	// (Mosquitto-style corking). k packets queued back-to-back coalesce
	// into one syscall instead of k.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		bw := bufio.NewWriterSize(conn, writerBufSize)
		for {
			op, ok := <-outbound
			if !ok {
				return
			}
			for ok {
				if b.writeOut(bw, op) != nil {
					return
				}
				select {
				case op, ok = <-outbound:
				default:
					ok = false
				}
			}
			if bw.Flush() != nil {
				return
			}
		}
	}()

	will := willOf(connect)
	normal := b.readLoop(conn, sess, connect.KeepAlive)

	// Tear down: detach so no further deliveries target this connection,
	// then close the outbound channel to stop the writer.
	b.unregisterConn(sess, conn, gen)
	close(outbound)
	_ = conn.Close()
	<-writerDone

	if !normal && will != nil {
		// The unified path also honors WillRetain (spec 3.1.2-17): the
		// will is stored retained before fan-out, atomically.
		b.publish(will, sess.clientID)
	}
	b.logf("broker: client %q disconnected (graceful=%v)", sess.clientID, normal)
}

// willOf extracts the will message from a CONNECT, if any.
func willOf(c *wire.ConnectPacket) *wire.PublishPacket {
	if !c.WillFlag {
		return nil
	}
	return &wire.PublishPacket{
		Topic:   c.WillTopic,
		Payload: c.WillMessage,
		QoS:     c.WillQoS,
		Retain:  c.WillRetain,
	}
}

// registerSession creates or revives the session for a CONNECT, taking over
// any existing connection with the same client ID.
func (b *Broker) registerSession(connect *wire.ConnectPacket, conn net.Conn) (*session, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, false, ErrClosed
	}

	if old, ok := b.conns[connect.ClientID]; ok {
		// Session takeover (spec 3.1.4): disconnect the existing client.
		_ = old.Close()
		delete(b.conns, connect.ClientID)
	}

	sess, existed := b.sessions[connect.ClientID]
	sessionPresent := false
	if connect.CleanSession || !existed {
		if existed {
			b.trie.removeAll(connect.ClientID)
			if sess.persistent {
				// A formerly durable session is being discarded.
				b.persistSessionRemove(connect.ClientID)
			}
		}
		sess = newSession(connect.ClientID, !connect.CleanSession)
		sess.persist = b.persist
		if sess.persistent {
			b.persistSessionFresh(connect.ClientID)
		}
		b.sessions[connect.ClientID] = sess
	} else {
		sessionPresent = true
	}
	b.conns[connect.ClientID] = conn
	return sess, sessionPresent, nil
}

// unregisterConn detaches a finished connection and discards clean-session
// state.
func (b *Broker) unregisterConn(sess *session, conn net.Conn, gen uint64) {
	sess.detach(gen)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.conns[sess.clientID] == conn {
		delete(b.conns, sess.clientID)
		if !sess.persistent {
			delete(b.sessions, sess.clientID)
			b.trie.removeAll(sess.clientID)
		}
	}
}

// readLoop processes inbound packets until the connection ends. It reports
// whether the client disconnected gracefully (DISCONNECT packet).
func (b *Broker) readLoop(conn net.Conn, sess *session, keepAlive uint16) (graceful bool) {
	for {
		if keepAlive > 0 {
			deadline := time.Duration(keepAlive) * time.Second * 3 / 2
			_ = conn.SetReadDeadline(time.Now().Add(deadline))
		} else {
			_ = conn.SetReadDeadline(time.Time{})
		}
		pkt, err := wire.ReadPacket(conn, b.opts.MaxPacketSize)
		if err != nil {
			return false
		}
		switch p := pkt.(type) {
		case *wire.PublishPacket:
			b.handlePublish(sess, p)
		case *wire.AckPacket:
			switch p.PacketType {
			case wire.PUBACK:
				sess.ack(p.PacketID)
			case wire.PUBREL:
				sess.releaseIncomingQoS2(p.PacketID)
				sess.send(&wire.AckPacket{PacketType: wire.PUBCOMP, PacketID: p.PacketID})
			case wire.PUBREC, wire.PUBCOMP:
				// Outbound QoS2 is never generated; ignore.
			}
		case *wire.SubscribePacket:
			b.handleSubscribe(sess, p)
		case *wire.UnsubscribePacket:
			b.handleUnsubscribe(sess, p)
		case *wire.PingreqPacket:
			sess.send(&wire.PingrespPacket{})
		case *wire.DisconnectPacket:
			return true
		case *wire.ConnectPacket:
			// Second CONNECT is a protocol violation (spec 3.1.0-2).
			return false
		default:
			return false
		}
	}
}

func (b *Broker) handlePublish(sess *session, p *wire.PublishPacket) {
	b.received.Add(1)
	if b.metrics != nil {
		b.metrics.received.Inc()
	}

	deliver := true
	switch p.QoS {
	case wire.QoS1:
		sess.send(&wire.AckPacket{PacketType: wire.PUBACK, PacketID: p.PacketID})
	case wire.QoS2:
		deliver = sess.markIncomingQoS2(p.PacketID)
		sess.send(&wire.AckPacket{PacketType: wire.PUBREC, PacketID: p.PacketID})
	}
	if !deliver {
		return
	}
	b.publish(p, sess.clientID)
}

// Publish injects a message into the broker as if published by an internal
// client — the path the $SYS publisher and telemetry exporters use.
func (b *Broker) Publish(topic string, payload []byte, qos wire.QoS, retain bool) {
	b.publish(&wire.PublishPacket{Topic: topic, Payload: payload, QoS: qos, Retain: retain}, "$internal")
}

// publish is the broker's single publish path. Retained-message storage and
// subscriber fan-out happen under one mu read hold, keeping store+route
// atomic against subscribes: handleSubscribe registers its trie entries and
// replays retained messages under the mu *write* lock, which excludes every
// in-flight publish read section in its entirety, so a client subscribing
// concurrently with a stream of retained publishes can never observe the
// live stream going backwards relative to the retained snapshot it was
// replayed. Concurrent publishes proceed in parallel — MQTT orders messages
// per publisher connection only, and each publisher's own publishes stay
// ordered because its read section completes before it issues the next.
// (session.deliver is a non-blocking queue insert and never acquires
// Broker.mu, so holding mu across fan-out cannot deadlock or block on a
// slow subscriber.)
//
// Deliveries whose effective QoS is 0 — the identical frame for every such
// subscriber — share one pre-encoded byte slice instead of per-subscriber
// packet allocation and re-encoding. QoS1 deliveries still carry a packet
// per subscriber, since each session assigns its own packet ID.
func (b *Broker) publish(p *wire.PublishPacket, fromClientID string) {
	_ = fromClientID // brokers may loop messages back to the publisher; MQTT allows it
	var droppedHere int64
	b.mu.RLock()
	if p.Retain {
		b.retainedMu.Lock()
		if len(p.Payload) == 0 {
			delete(b.retained, p.Topic)
		} else {
			b.retained[p.Topic] = retainedMsg{payload: append([]byte(nil), p.Payload...), qos: p.QoS}
		}
		// Journaled under retainedMu so WAL order equals map order.
		b.persistRetain(p)
		b.retainedMu.Unlock()
	}
	b.notePublish(p.Topic)
	var frame []byte // shared QoS0 frame, encoded on first need
	for _, sub := range b.trie.match(p.Topic) {
		qos := minQoS(p.QoS, sub.qos)
		// Retain flag is false on normal routed deliveries (spec
		// 3.3.1-9); it is true only for retained replay at subscribe
		// time.
		if qos == wire.QoS0 {
			if frame == nil {
				var err error
				frame, err = wire.AppendEncode(nil, &wire.PublishPacket{Topic: p.Topic, Payload: p.Payload})
				if err != nil {
					// Unroutable topic (possible only via the internal
					// Publish API): count the miss rather than handing
					// subscribers a frame that kills their connection.
					droppedHere++
					break
				}
			}
			if !sub.session.deliverFrame(frame) {
				droppedHere++
			}
			continue
		}
		out := &wire.PublishPacket{Topic: p.Topic, Payload: p.Payload, QoS: qos}
		if !sub.session.deliver(out) {
			droppedHere++
		}
	}
	b.mu.RUnlock()
	if b.metrics != nil && droppedHere > 0 {
		b.metrics.dropped.Add(droppedHere)
	}
}

// writerBufSize is the per-connection outbound coalescing buffer.
const writerBufSize = 16 << 10

// writeOut serializes one outbound item into the connection's buffered
// writer and bumps the delivery counters for application messages.
func (b *Broker) writeOut(bw *bufio.Writer, op outPacket) error {
	if op.frame != nil {
		if _, err := bw.Write(op.frame); err != nil {
			return err
		}
		b.noteDelivered()
		return nil
	}
	if err := wire.WritePacket(bw, op.pkt); err != nil {
		return err
	}
	if op.pkt.Type() == wire.PUBLISH {
		b.noteDelivered()
	}
	return nil
}

func (b *Broker) noteDelivered() {
	b.delivered.Add(1)
	if b.metrics != nil {
		b.metrics.delivered.Inc()
	}
}

// notePublish records a publish against its (bounded) topic key.
// Broker-internal topics ($SYS, …) are excluded so self-statistics never
// feed back into the statistics. The common case — a topic already being
// accounted — takes only pubMu's read lock plus an atomic add.
func (b *Broker) notePublish(topic string) {
	if strings.HasPrefix(topic, "$") {
		return
	}
	b.pubMu.RLock()
	tc, ok := b.pubByTopic[topic]
	b.pubMu.RUnlock()
	if ok {
		tc.bump()
		return
	}
	b.pubMu.Lock()
	key := topic
	tc, ok = b.pubByTopic[key]
	if !ok && len(b.pubByTopic) >= maxPublishTopics {
		key = overflowTopicKey
		tc, ok = b.pubByTopic[key]
	}
	if !ok {
		tc = &topicCount{}
		if b.metrics != nil {
			tc.metric = b.metrics.reg.Counter("ifot_broker_publish_total",
				"publishes routed per topic (bounded cardinality)", telemetry.L("topic", key))
		}
		b.pubByTopic[key] = tc
	}
	b.pubMu.Unlock()
	tc.bump()
}

// PublishCounts snapshots the bounded per-topic publish counters. Like
// Stats, it never takes a write lock, so scraping cannot stall publishes.
func (b *Broker) PublishCounts() map[string]int64 {
	b.pubMu.RLock()
	defer b.pubMu.RUnlock()
	out := make(map[string]int64, len(b.pubByTopic))
	for k, tc := range b.pubByTopic {
		out[k] = tc.n.Load()
	}
	return out
}

func (b *Broker) handleSubscribe(sess *session, p *wire.SubscribePacket) {
	codes := make([]byte, len(p.Subscriptions))

	// Registration and retained replay happen under one mu write hold,
	// which excludes every publish read section whole (spec 3.3.1-6 replay
	// consistency): the replayed snapshot reflects exactly the publishes
	// whose store+route completed, and every later publish delivers live.
	// The live stream can therefore never run behind the replay.
	b.mu.Lock()
	for i, sub := range p.Subscriptions {
		granted := minQoS(sub.QoS, b.opts.MaxQoS)
		b.trie.subscribe(sub.TopicFilter, sess, granted)
		sess.addSubscription(sub.TopicFilter, granted)
		b.persistSub(sess, sub.TopicFilter, granted)
		codes[i] = byte(granted)
	}
	sess.send(&wire.SubackPacket{PacketID: p.PacketID, ReturnCodes: codes})

	b.retainedMu.Lock()
	for i, sub := range p.Subscriptions {
		for topic, msg := range b.retained {
			if wire.MatchTopic(sub.TopicFilter, topic) {
				sess.deliver(&wire.PublishPacket{
					Topic:   topic,
					Payload: msg.payload,
					QoS:     minQoS(msg.qos, wire.QoS(codes[i])),
					Retain:  true,
				})
			}
		}
	}
	b.retainedMu.Unlock()
	b.mu.Unlock()
}

func (b *Broker) handleUnsubscribe(sess *session, p *wire.UnsubscribePacket) {
	b.mu.Lock()
	for _, f := range p.TopicFilters {
		b.trie.unsubscribe(f, sess.clientID)
		sess.removeSubscription(f)
		b.persistUnsub(sess, f)
	}
	b.mu.Unlock()
	sess.send(&wire.AckPacket{PacketType: wire.UNSUBACK, PacketID: p.PacketID})
}

func minQoS(a, b wire.QoS) wire.QoS {
	if a < b {
		return a
	}
	return b
}
