package broker

import (
	"strconv"
	"time"

	"github.com/ifot-middleware/ifot/internal/wire"
)

// SysTopicPrefix roots the broker's self-statistics topics, mirroring
// Mosquitto's $SYS hierarchy. Wildcard subscriptions never match these
// (spec 4.7.2); clients must subscribe under $SYS explicitly.
const SysTopicPrefix = "$SYS/broker/"

// PublishSysStats starts a goroutine that publishes broker statistics as
// retained messages under $SYS/broker/ every interval, until stop is
// closed or the broker shuts down. It returns a channel that is closed
// when the publisher exits.
func (b *Broker) PublishSysStats(interval time.Duration, stop <-chan struct{}) <-chan struct{} {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			b.publishSysStatsOnce()
			select {
			case <-ticker.C:
			case <-stop:
				return
			}
			b.mu.Lock()
			closed := b.closed
			b.mu.Unlock()
			if closed {
				return
			}
		}
	}()
	return done
}

// publishSysStatsOnce routes one snapshot of Stats into the topic tree.
func (b *Broker) publishSysStatsOnce() {
	s := b.Stats()
	for topic, value := range map[string]int64{
		SysTopicPrefix + "clients/connected":  int64(s.ConnectedClients),
		SysTopicPrefix + "clients/total":      int64(s.Sessions),
		SysTopicPrefix + "subscriptions":      int64(s.Subscriptions),
		SysTopicPrefix + "retained":           int64(s.RetainedMessages),
		SysTopicPrefix + "messages/received":  s.MessagesReceived,
		SysTopicPrefix + "messages/delivered": s.MessagesDelivered,
		SysTopicPrefix + "messages/dropped":   s.MessagesDropped,
	} {
		payload := []byte(strconv.FormatInt(value, 10))
		pkt := &wire.PublishPacket{Topic: topic, Payload: payload, Retain: true}
		// Store retained so late subscribers see the latest snapshot.
		b.mu.Lock()
		b.retained[topic] = retainedMsg{payload: payload, qos: wire.QoS0}
		b.mu.Unlock()
		b.route(pkt, "$SYS")
	}
}
