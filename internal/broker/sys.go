package broker

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/ifot-middleware/ifot/internal/wire"
)

// SysTopicPrefix roots the broker's self-statistics topics, mirroring
// Mosquitto's $SYS hierarchy. Wildcard subscriptions never match these
// (spec 4.7.2); clients must subscribe under $SYS explicitly.
const SysTopicPrefix = "$SYS/broker/"

// Version is the broker implementation version advertised on
// $SYS/broker/version.
const Version = "ifot-broker 0.2"

// PublishSysStats starts a goroutine that publishes broker statistics as
// retained messages under $SYS/broker/ every interval, until stop is
// closed or the broker shuts down. It returns a channel that is closed
// when the publisher exits.
func (b *Broker) PublishSysStats(interval time.Duration, stop <-chan struct{}) <-chan struct{} {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		var prev map[string]int64
		var prevAt time.Time
		for {
			now := time.Now()
			counts := b.PublishCounts()
			b.publishSysStatsOnce(counts, prev, now.Sub(prevAt))
			prev, prevAt = counts, now
			select {
			case <-ticker.C:
			case <-stop:
				return
			}
			b.mu.RLock()
			closed := b.closed
			b.mu.RUnlock()
			if closed {
				return
			}
		}
	}()
	return done
}

// publishSysStatsOnce routes one snapshot of Stats into the topic tree.
// Every topic goes through the broker's unified publish path, so the
// retained store and the live fan-out update atomically: a subscriber
// arriving mid-snapshot sees a retained value at least as fresh as any
// live update it receives, never fresher.
func (b *Broker) publishSysStatsOnce(counts, prev map[string]int64, elapsed time.Duration) {
	s := b.Stats()
	hits, misses := b.RouteCacheStats()
	for topic, value := range map[string]int64{
		SysTopicPrefix + "clients/connected":   int64(s.ConnectedClients),
		SysTopicPrefix + "clients/total":       int64(s.Sessions),
		SysTopicPrefix + "subscriptions":       int64(s.Subscriptions),
		SysTopicPrefix + "retained":            int64(s.RetainedMessages),
		SysTopicPrefix + "messages/received":   s.MessagesReceived,
		SysTopicPrefix + "messages/delivered":  s.MessagesDelivered,
		SysTopicPrefix + "messages/dropped":    s.MessagesDropped,
		SysTopicPrefix + "routes/epoch":        int64(b.RouteEpoch()),
		SysTopicPrefix + "routes/cache/hits":   hits,
		SysTopicPrefix + "routes/cache/misses": misses,
	} {
		b.Publish(topic, []byte(strconv.FormatInt(value, 10)), wire.QoS0, true)
	}
	// Mosquitto-style uptime ("<seconds> seconds") and version strings.
	uptime := fmt.Sprintf("%d seconds", int64(b.Uptime().Seconds()))
	b.Publish(SysTopicPrefix+"uptime", []byte(uptime), wire.QoS0, true)
	b.Publish(SysTopicPrefix+"version", []byte(Version), wire.QoS0, true)

	// Per-topic publish rates (messages/second since the previous
	// snapshot) under $SYS/broker/load/publish/<topic>. Cardinality is
	// bounded by the broker's per-topic accounting; overflow traffic
	// appears under .../other.
	if prev != nil && elapsed > 0 {
		for topic, n := range counts {
			rate := float64(n-prev[topic]) / elapsed.Seconds()
			b.Publish(SysTopicPrefix+"load/publish/"+sysTopicKey(topic),
				[]byte(strconv.FormatFloat(rate, 'f', 2, 64)), wire.QoS0, true)
		}
	}
}

// sysTopicKey maps a publish-accounting key to a $SYS sub-topic.
func sysTopicKey(topic string) string {
	if topic == overflowTopicKey {
		return "other"
	}
	// Topics already use '/' separators and nest naturally; strip any
	// leading separator so the $SYS path stays well-formed.
	return strings.TrimPrefix(topic, "/")
}
