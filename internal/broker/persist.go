package broker

import (
	"encoding/json"
	"fmt"
	"log"
	"sort"
	"sync/atomic"
	"time"

	"github.com/ifot-middleware/ifot/internal/store"
	"github.com/ifot-middleware/ifot/internal/telemetry"
	"github.com/ifot-middleware/ifot/internal/wire"
)

// Broker durability. When Options.Store is set, the broker journals every
// state mutation that must survive a restart — retained messages,
// persistent-session lifecycle and subscriptions, QoS 1 inflight/queued
// messages — as one WAL record each, and Open replays snapshot + WAL to
// rebuild that state before accepting connections.
//
// The journaling rules follow the broker's locking model: each record is
// appended while holding the same lock that guards the in-memory mutation
// (retainedMu for retained, session.mu for queues, b.mu for subscriptions
// and session lifecycle), so WAL order equals effective memory order. The
// store's Append is a buffered write behind its own leaf mutex — cheap
// enough to sit on those paths — and durability comes from group-commit
// (one fsync covers every append in the window), so the QoS0 fan-out hot
// path pays nothing and the QoS1 path pays a memcpy, not an fsync.
//
// Replay idempotency: records between a snapshot's log mark and its
// capture can be applied twice (once inside the snapshot, once from the
// tail). Retained/subscription records are last-writer-wins; QoS1 queue
// records carry a broker-wide message ID and are deduplicated on replay;
// acks for unknown IDs are no-ops.

// persist record ops.
const (
	opRetain = "ret"    // retained message set/delete (empty payload deletes)
	opSess   = "sess"   // persistent session (re)created fresh
	opSessRm = "sessrm" // session state discarded (clean-session reconnect)
	opSub    = "sub"    // subscription added
	opUnsub  = "unsub"  // subscription removed
	opQueue  = "q"      // QoS1 message entered a persistent session's window
	opAck    = "ack"    // QoS1 message acked (or dropped by queue overflow)
)

// persistRec is the JSON wire form of one WAL record.
type persistRec struct {
	Op      string `json:"op"`
	Client  string `json:"client,omitempty"`
	Topic   string `json:"topic,omitempty"`
	Filter  string `json:"filter,omitempty"`
	Payload []byte `json:"payload,omitempty"`
	QoS     byte   `json:"qos,omitempty"`
	ID      uint64 `json:"id,omitempty"`
}

// persistSnapshot is the JSON blob handed to Snapshotter.SaveSnapshot.
type persistSnapshot struct {
	MsgSeq   uint64         `json:"msg_seq"`
	Retained []snapRetained `json:"retained,omitempty"`
	Sessions []snapSession  `json:"sessions,omitempty"`
}

type snapRetained struct {
	Topic   string `json:"topic"`
	Payload []byte `json:"payload"`
	QoS     byte   `json:"qos"`
}

type snapSession struct {
	ClientID string          `json:"client"`
	Subs     map[string]byte `json:"subs,omitempty"`
	Msgs     []snapMsg       `json:"msgs,omitempty"` // inflight then queued, delivery order
}

type snapMsg struct {
	ID      uint64 `json:"id"`
	Topic   string `json:"topic"`
	Payload []byte `json:"payload"`
	QoS     byte   `json:"qos"`
}

// persister owns the broker's journal handle and the broker-wide message
// ID sequence that makes QoS1 queue records idempotent on replay.
type persister struct {
	journal *store.Journal
	msgSeq  atomic.Uint64
	logger  *log.Logger
	events  *telemetry.EventLog
	// degraded latches on the first append failure so the event log sees
	// one persist_degraded per outage (every failed append still logs),
	// and a persist_recovered when appends succeed again.
	degraded atomic.Bool
}

func (pp *persister) nextMsgID() uint64 { return pp.msgSeq.Add(1) }

// append journals one record. Journal errors (disk full, store closed
// during shutdown) are logged, not propagated: the broker keeps serving
// from memory — degraded durability beats a dead broker on an edge node.
func (pp *persister) append(rec persistRec) {
	buf, err := json.Marshal(rec)
	if err != nil {
		pp.logf("broker persist: marshal %s: %v", rec.Op, err)
		return
	}
	if err := pp.journal.Append(buf); err != nil {
		pp.logf("broker persist: append %s: %v", rec.Op, err)
		if pp.degraded.CompareAndSwap(false, true) {
			pp.events.Eventf(telemetry.SevError, "", "persist_degraded",
				"op", rec.Op, "error", err.Error())
		}
		return
	}
	if pp.degraded.CompareAndSwap(true, false) {
		pp.events.Eventf(telemetry.SevInfo, "", "persist_recovered")
	}
}

func (pp *persister) logf(format string, args ...any) {
	if pp.logger != nil {
		pp.logger.Printf(format, args...)
	}
}

// noteQueued assigns a message ID and journals a QoS1 message entering
// the client's persistent window. Called under session.mu.
func (pp *persister) noteQueued(clientID string, p *wire.PublishPacket) uint64 {
	id := pp.nextMsgID()
	pp.append(persistRec{Op: opQueue, Client: clientID, ID: id, Topic: p.Topic, Payload: p.Payload, QoS: byte(p.QoS)})
	return id
}

// noteAcked journals a QoS1 message leaving the window (PUBACK received,
// or dropped by offline-queue overflow). Called under session.mu.
func (pp *persister) noteAcked(clientID string, id uint64) {
	pp.append(persistRec{Op: opAck, Client: clientID, ID: id})
}

// --- journaling hooks (called from broker.go under the locks noted) ---

// persistRetain journals a retained set/delete. Caller holds retainedMu
// (inside a publish's gate read section), so WAL order matches map order.
func (b *Broker) persistRetain(p *wire.PublishPacket) {
	if b.persist == nil {
		return
	}
	b.persist.append(persistRec{Op: opRetain, Topic: p.Topic, Payload: p.Payload, QoS: byte(p.QoS)})
}

// persistSub journals a persistent session's subscription. Caller holds
// b.mu (write).
func (b *Broker) persistSub(sess *session, filter string, qos wire.QoS) {
	if b.persist == nil || !sess.persistent {
		return
	}
	b.persist.append(persistRec{Op: opSub, Client: sess.clientID, Filter: filter, QoS: byte(qos)})
}

// persistUnsub journals a subscription removal. Caller holds b.mu (write).
func (b *Broker) persistUnsub(sess *session, filter string) {
	if b.persist == nil || !sess.persistent {
		return
	}
	b.persist.append(persistRec{Op: opUnsub, Client: sess.clientID, Filter: filter})
}

// persistSessionFresh journals that clientID's durable state starts fresh
// (new persistent session). Caller holds b.mu (write).
func (b *Broker) persistSessionFresh(clientID string) {
	if b.persist == nil {
		return
	}
	b.persist.append(persistRec{Op: opSess, Client: clientID})
}

// persistSessionRemove journals that clientID's durable state is gone
// (persistent session replaced by a clean one). Caller holds b.mu (write).
func (b *Broker) persistSessionRemove(clientID string) {
	if b.persist == nil {
		return
	}
	b.persist.append(persistRec{Op: opSessRm, Client: clientID})
}

// --- snapshot capture ---

// captureState serializes the broker's durable state. It runs inside
// Snapshotter.SaveSnapshot on the journal's background goroutine and takes
// the broker's locks in the canonical order (mu ⊃ retainedMu, session.mu),
// never inverting the order used by the append paths. Each domain is
// captured point-in-time under its own append lock (retainedMu for the
// retained map, session.mu per session); publishes running concurrently
// with the capture — mu no longer excludes them under epoch-published
// routing — land their WAL records after the journal's rotation mark, so
// replay over the snapshot reapplies them idempotently (last-writer-wins
// retained records, ID-deduplicated queue records).
func (b *Broker) captureState() ([]byte, error) {
	snap := persistSnapshot{MsgSeq: b.persist.msgSeq.Load()}

	b.mu.Lock()
	b.retainedMu.Lock()
	for topic, msg := range b.retained {
		snap.Retained = append(snap.Retained, snapRetained{Topic: topic, Payload: msg.payload, QoS: byte(msg.qos)})
	}
	b.retainedMu.Unlock()
	for _, sess := range b.sessions {
		if !sess.persistent {
			continue
		}
		snap.Sessions = append(snap.Sessions, sess.snapshotLocked())
	}
	b.mu.Unlock()

	// Deterministic blob: handy for tests and dedup-friendly on disk.
	sort.Slice(snap.Retained, func(i, j int) bool { return snap.Retained[i].Topic < snap.Retained[j].Topic })
	sort.Slice(snap.Sessions, func(i, j int) bool { return snap.Sessions[i].ClientID < snap.Sessions[j].ClientID })
	return json.Marshal(snap)
}

// snapshotLocked captures one session's durable state. Takes session.mu
// (caller holds b.mu, matching the lock order).
func (s *session) snapshotLocked() snapSession {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := snapSession{ClientID: s.clientID}
	if len(s.subscriptions) > 0 {
		out.Subs = make(map[string]byte, len(s.subscriptions))
		for f, q := range s.subscriptions {
			out.Subs[f] = byte(q)
		}
	}
	// Inflight first (they redeliver first on attach), ordered by message
	// ID so the blob is deterministic; then the offline queue in order.
	type flight struct {
		id  uint64
		pkt *wire.PublishPacket
	}
	inf := make([]flight, 0, len(s.inflight))
	for pid, p := range s.inflight {
		inf = append(inf, flight{id: s.inflightIDs[pid], pkt: p})
	}
	sort.Slice(inf, func(i, j int) bool { return inf[i].id < inf[j].id })
	for _, f := range inf {
		out.Msgs = append(out.Msgs, snapMsg{ID: f.id, Topic: f.pkt.Topic, Payload: f.pkt.Payload, QoS: byte(f.pkt.QoS)})
	}
	for i, p := range s.queued {
		var id uint64
		if i < len(s.queuedIDs) {
			id = s.queuedIDs[i]
		}
		out.Msgs = append(out.Msgs, snapMsg{ID: id, Topic: p.Topic, Payload: p.Payload, QoS: byte(p.QoS)})
	}
	return out
}

// --- recovery ---

// recoverState rebuilds broker state from the store's snapshot and WAL
// tail. It runs single-threaded from Open, before the broker is shared,
// so it mutates maps directly.
func (b *Broker) recoverState(st store.Store) error {
	start := time.Now()
	// seen tracks per-client message IDs already applied, deduplicating
	// queue records that appear both in the snapshot and the WAL tail.
	seen := make(map[string]map[uint64]bool)
	var maxID uint64

	blob, err := st.LoadSnapshot()
	if err != nil {
		return fmt.Errorf("broker: load snapshot: %w", err)
	}
	if blob != nil {
		var snap persistSnapshot
		if err := json.Unmarshal(blob, &snap); err != nil {
			return fmt.Errorf("broker: decode snapshot: %w", err)
		}
		if snap.MsgSeq > maxID {
			maxID = snap.MsgSeq
		}
		for _, r := range snap.Retained {
			b.retained[r.Topic] = retainedMsg{payload: r.Payload, qos: wire.QoS(r.QoS)}
		}
		for _, ss := range snap.Sessions {
			sess := b.recoverSession(ss.ClientID)
			for f, q := range ss.Subs {
				b.trie.subscribe(f, sess, wire.QoS(q))
				sess.subscriptions[f] = wire.QoS(q)
			}
			ids := seen[ss.ClientID]
			for _, m := range ss.Msgs {
				if m.ID > maxID {
					maxID = m.ID
				}
				if ids == nil {
					ids = make(map[uint64]bool)
					seen[ss.ClientID] = ids
				}
				ids[m.ID] = true
				sess.recoverQueued(&wire.PublishPacket{Topic: m.Topic, Payload: m.Payload, QoS: wire.QoS(m.QoS)}, m.ID)
			}
		}
	}

	replayed := 0
	err = st.Replay(func(data []byte) error {
		var rec persistRec
		if err := json.Unmarshal(data, &rec); err != nil {
			return fmt.Errorf("broker: decode WAL record: %w", err)
		}
		replayed++
		if rec.ID > maxID {
			maxID = rec.ID
		}
		switch rec.Op {
		case opRetain:
			if len(rec.Payload) == 0 {
				delete(b.retained, rec.Topic)
			} else {
				b.retained[rec.Topic] = retainedMsg{payload: rec.Payload, qos: wire.QoS(rec.QoS)}
			}
		case opSess:
			// Fresh durable state for this client: drop anything earlier.
			b.dropRecoveredSession(rec.Client)
			delete(seen, rec.Client)
			b.recoverSession(rec.Client)
		case opSessRm:
			b.dropRecoveredSession(rec.Client)
			delete(seen, rec.Client)
		case opSub:
			sess := b.recoverSession(rec.Client)
			b.trie.subscribe(rec.Filter, sess, wire.QoS(rec.QoS))
			sess.subscriptions[rec.Filter] = wire.QoS(rec.QoS)
		case opUnsub:
			if sess, ok := b.sessions[rec.Client]; ok {
				b.trie.unsubscribe(rec.Filter, rec.Client)
				delete(sess.subscriptions, rec.Filter)
			}
		case opQueue:
			sess := b.recoverSession(rec.Client)
			ids := seen[rec.Client]
			if ids == nil {
				ids = make(map[uint64]bool)
				seen[rec.Client] = ids
			}
			if ids[rec.ID] {
				return nil // duplicated across snapshot boundary
			}
			ids[rec.ID] = true
			sess.recoverQueued(&wire.PublishPacket{Topic: rec.Topic, Payload: rec.Payload, QoS: wire.QoS(rec.QoS)}, rec.ID)
		case opAck:
			if sess, ok := b.sessions[rec.Client]; ok {
				sess.dropRecoveredMsg(rec.ID)
				if ids := seen[rec.Client]; ids != nil {
					delete(ids, rec.ID)
				}
			}
		default:
			b.logf("broker persist: skipping unknown WAL op %q", rec.Op)
		}
		return nil
	})
	if err != nil {
		return err
	}
	b.persist.msgSeq.Store(maxID)

	if rt, ok := st.(interface{ AddRecoveryDuration(time.Duration) }); ok {
		rt.AddRecoveryDuration(time.Since(start))
	}
	if blob != nil || replayed > 0 {
		b.logf("broker: recovered %d retained, %d sessions, %d WAL records in %v",
			len(b.retained), len(b.sessions), replayed, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// recoverSession returns (creating if needed) the persistent session for
// clientID during recovery.
func (b *Broker) recoverSession(clientID string) *session {
	if sess, ok := b.sessions[clientID]; ok {
		return sess
	}
	sess := newSession(clientID, true)
	sess.persist = b.persist
	b.sessions[clientID] = sess
	return sess
}

// dropRecoveredSession removes a session rebuilt during recovery.
func (b *Broker) dropRecoveredSession(clientID string) {
	if _, ok := b.sessions[clientID]; !ok {
		return
	}
	delete(b.sessions, clientID)
	b.trie.removeAll(clientID)
}

// recoverQueued appends a replayed QoS1 message to the offline queue
// (every recovered message is offline: there are no connections yet).
// Recovery is single-threaded, so no locking.
func (s *session) recoverQueued(p *wire.PublishPacket, msgID uint64) {
	if len(s.queued) >= maxQueuedOffline {
		s.queued = s.queued[1:]
		s.queuedIDs = s.queuedIDs[1:]
		s.droppedMessages.Add(1)
	}
	s.queued = append(s.queued, p)
	s.queuedIDs = append(s.queuedIDs, msgID)
}

// dropRecoveredMsg removes a replayed message by ID (ack record).
func (s *session) dropRecoveredMsg(msgID uint64) {
	for i, id := range s.queuedIDs {
		if id == msgID {
			s.queued = append(s.queued[:i], s.queued[i+1:]...)
			s.queuedIDs = append(s.queuedIDs[:i], s.queuedIDs[i+1:]...)
			return
		}
	}
}
