package broker

import (
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ifot-middleware/ifot/internal/store"
	"github.com/ifot-middleware/ifot/internal/wire"
)

// startBenchBroker serves a real TCP listener so benchmarks exercise the
// same socket path production traffic takes.
func startBenchBroker(b *testing.B, opts Options) (*Broker, string) {
	b.Helper()
	br := New(opts)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = br.Serve(l) }()
	b.Cleanup(func() { _ = br.Close() })
	return br, l.Addr().String()
}

// benchSubscriber connects a raw wire-level subscriber that drains its
// socket as fast as the kernel hands bytes over, so the broker side (the
// measured path) is never throttled by client-side decoding.
func benchSubscriber(b *testing.B, addr, id, filter string) {
	b.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = conn.Close() })
	if err := wire.WritePacket(conn, &wire.ConnectPacket{ClientID: id, CleanSession: true}); err != nil {
		b.Fatal(err)
	}
	if _, err := wire.ReadPacket(conn, 0); err != nil { // CONNACK
		b.Fatal(err)
	}
	sub := &wire.SubscribePacket{
		PacketID:      1,
		Subscriptions: []wire.Subscription{{TopicFilter: filter, QoS: wire.QoS0}},
	}
	if err := wire.WritePacket(conn, sub); err != nil {
		b.Fatal(err)
	}
	if _, err := wire.ReadPacket(conn, 0); err != nil { // SUBACK
		b.Fatal(err)
	}
	go func() { _, _ = io.Copy(io.Discard, conn) }()
}

// benchWindow bounds how many messages a benchmark publisher keeps
// outstanding per subscriber queue. It is far below SessionQueueSize, so a
// paced benchmark run never drops: msgs/sec is sustained no-drop delivery
// throughput, not enqueue-and-discard speed.
const benchWindow = 1024

// BenchmarkPublishFanout measures the broker's publish hot path: one
// publisher injecting QoS0 messages that fan out to N TCP subscribers.
// msgs/sec counts routed deliveries; drops/op should stay at zero.
func BenchmarkPublishFanout(b *testing.B) {
	for _, subs := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			br, addr := startBenchBroker(b, Options{SessionQueueSize: 8192})
			for i := 0; i < subs; i++ {
				benchSubscriber(b, addr, fmt.Sprintf("fan-%d", i), "bench/fanout")
			}
			waitSubs(b, br, subs)
			payload := make([]byte, 128)
			base := br.Stats()

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				br.Publish("bench/fanout", payload, wire.QoS0, false)
				if (i+1)%benchWindow == 0 {
					drainDeliveries(b, br, base, int64(subs)*int64(i+1))
				}
			}
			st := drainDeliveries(b, br, base, int64(subs)*int64(b.N))
			b.StopTimer()
			b.ReportMetric(float64(int64(subs)*int64(b.N))/b.Elapsed().Seconds(), "msgs/sec")
			b.ReportMetric(float64(st.MessagesDropped-base.MessagesDropped)/float64(b.N), "drops/op")
		})
	}
}

// BenchmarkPublishConcurrent measures routing scalability: GOMAXPROCS
// publishers running concurrently against a wildcard subscriber pool. With
// a single global broker lock the publishers serialize; with read-mostly
// routing they proceed in parallel.
func BenchmarkPublishConcurrent(b *testing.B) {
	const subs = 8
	br, addr := startBenchBroker(b, Options{SessionQueueSize: 8192})
	for i := 0; i < subs; i++ {
		benchSubscriber(b, addr, fmt.Sprintf("par-%d", i), "bench/par/#")
	}
	waitSubs(b, br, subs)
	payload := make([]byte, 128)
	base := br.Stats()

	b.ReportAllocs()
	b.ResetTimer()
	var published atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			br.Publish("bench/par/t", payload, wire.QoS0, false)
			if p := published.Add(1); p%256 == 0 {
				// Pace all publishers against the slowest queue so the
				// benchmark never overruns SessionQueueSize.
				for {
					st := br.Stats()
					if p*subs-(st.MessagesDelivered-base.MessagesDelivered) <= subs*benchWindow {
						break
					}
					time.Sleep(50 * time.Microsecond)
				}
			}
		}
	})
	n := int64(b.N)
	st := drainDeliveries(b, br, base, subs*n)
	b.StopTimer()
	b.ReportMetric(float64(subs*n)/b.Elapsed().Seconds(), "msgs/sec")
	b.ReportMetric(float64(st.MessagesDropped-base.MessagesDropped)/float64(b.N), "drops/op")
}

// BenchmarkPublishChurn measures publish latency under subscription churn:
// a background client subscribes and unsubscribes continuously, forcing
// route-snapshot swaps, while the publisher drives the hot topic. Besides
// msgs/sec it reports the worst single-publish latency observed — the
// acceptance bound is that no publish stalls longer than one snapshot swap
// (the gate parks a publisher only for the pointer store plus retained
// replay, never for the snapshot rebuild).
func BenchmarkPublishChurn(b *testing.B) {
	const subs = 4
	br, addr := startBenchBroker(b, Options{SessionQueueSize: 8192})
	for i := 0; i < subs; i++ {
		benchSubscriber(b, addr, fmt.Sprintf("churn-%d", i), "bench/churn/#")
	}
	waitSubs(b, br, subs)

	// Churner: a raw wire-level client flipping a filter as fast as the
	// broker acks, swapping the route snapshot on every flip.
	churnConn, err := net.Dial("tcp", addr)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = churnConn.Close() })
	if err := wire.WritePacket(churnConn, &wire.ConnectPacket{ClientID: "churner", CleanSession: true}); err != nil {
		b.Fatal(err)
	}
	if _, err := wire.ReadPacket(churnConn, 0); err != nil { // CONNACK
		b.Fatal(err)
	}
	stopChurn := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for id := uint16(1); ; id += 2 {
			select {
			case <-stopChurn:
				return
			default:
			}
			sub := &wire.SubscribePacket{
				PacketID:      id,
				Subscriptions: []wire.Subscription{{TopicFilter: "bench/noise/+", QoS: wire.QoS0}},
			}
			if err := wire.WritePacket(churnConn, sub); err != nil {
				return
			}
			if _, err := wire.ReadPacket(churnConn, 0); err != nil { // SUBACK
				return
			}
			unsub := &wire.UnsubscribePacket{PacketID: id + 1, TopicFilters: []string{"bench/noise/+"}}
			if err := wire.WritePacket(churnConn, unsub); err != nil {
				return
			}
			if _, err := wire.ReadPacket(churnConn, 0); err != nil { // UNSUBACK
				return
			}
		}
	}()

	payload := make([]byte, 128)
	base := br.Stats()
	startEpoch := br.RouteEpoch()

	var maxLatency time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		br.Publish("bench/churn/t", payload, wire.QoS0, false)
		if d := time.Since(t0); d > maxLatency {
			maxLatency = d
		}
		if (i+1)%benchWindow == 0 {
			drainDeliveries(b, br, base, int64(subs)*int64(i+1))
		}
	}
	st := drainDeliveries(b, br, base, int64(subs)*int64(b.N))
	b.StopTimer()
	close(stopChurn)
	_ = churnConn.Close()
	<-churnDone
	swaps := br.RouteEpoch() - startEpoch
	b.ReportMetric(float64(int64(subs)*int64(b.N))/b.Elapsed().Seconds(), "msgs/sec")
	b.ReportMetric(float64(st.MessagesDropped-base.MessagesDropped)/float64(b.N), "drops/op")
	b.ReportMetric(float64(maxLatency.Nanoseconds()), "max-publish-ns")
	b.ReportMetric(float64(swaps), "swaps")
}

func waitSubs(b *testing.B, br *Broker, want int) {
	b.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for br.Stats().Subscriptions < want {
		if time.Now().After(deadline) {
			b.Fatalf("only %d/%d subscriptions registered", br.Stats().Subscriptions, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// drainDeliveries waits until every routed message has either hit a
// subscriber socket or been counted as dropped, so the timed region covers
// the full broker-side delivery cost.
func drainDeliveries(b *testing.B, br *Broker, base Stats, want int64) Stats {
	b.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := br.Stats()
		done := (st.MessagesDelivered - base.MessagesDelivered) + (st.MessagesDropped - base.MessagesDropped)
		if done >= want {
			return st
		}
		if time.Now().After(deadline) {
			b.Fatalf("drained %d/%d deliveries", done, want)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// BenchmarkPublishFanoutDurable is BenchmarkPublishFanout with a WAL-backed
// broker: same QoS0 fan-out hot path, persistence enabled via a real
// FileStore in a temp dir. QoS0 fan-out journals nothing, so this measures
// the overhead of the persistence nil-checks plus any incidental retained
// or session traffic — the acceptance bound is ≤10% vs the in-memory
// BenchmarkPublishFanout baseline.
func BenchmarkPublishFanoutDurable(b *testing.B) {
	for _, subs := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			st, err := store.Open(b.TempDir(), store.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { _ = st.Close() })
			br, addr := startBenchBroker(b, Options{SessionQueueSize: 8192, Store: st})
			for i := 0; i < subs; i++ {
				benchSubscriber(b, addr, fmt.Sprintf("fan-%d", i), "bench/fanout")
			}
			waitSubs(b, br, subs)
			payload := make([]byte, 128)
			base := br.Stats()

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				br.Publish("bench/fanout", payload, wire.QoS0, false)
				if (i+1)%benchWindow == 0 {
					drainDeliveries(b, br, base, int64(subs)*int64(i+1))
				}
			}
			stats := drainDeliveries(b, br, base, int64(subs)*int64(b.N))
			b.StopTimer()
			b.ReportMetric(float64(int64(subs)*int64(b.N))/b.Elapsed().Seconds(), "msgs/sec")
			b.ReportMetric(float64(stats.MessagesDropped-base.MessagesDropped)/float64(b.N), "drops/op")
		})
	}
}
