package mqttclient

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/ifot-middleware/ifot/internal/telemetry"
	"github.com/ifot-middleware/ifot/internal/wire"
)

// A handler stalled on one subscription must not delay deliveries to other
// subscriptions on the same client: each registration drains its own lane.
// Under the old single-dispatch-goroutine design the fast message below
// would sit behind the blocked slow handler and this test would time out.
func TestSlowHandlerDoesNotStallOtherSubscriptions(t *testing.T) {
	fb := newFakeBroker(t)
	c := fb.connect(t, NewOptions("laner"))
	defer c.Close()

	release := make(chan struct{})
	slowStarted := make(chan struct{}, 1)
	var slowMu sync.Mutex
	var slowGot []string
	if _, err := c.Subscribe("lane/slow", wire.QoS0, func(m Message) {
		select {
		case slowStarted <- struct{}{}:
		default:
		}
		<-release
		slowMu.Lock()
		slowGot = append(slowGot, string(m.Payload))
		slowMu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	fastGot := make(chan string, 8)
	if _, err := c.Subscribe("lane/fast", wire.QoS0, func(m Message) {
		fastGot <- string(m.Payload)
	}); err != nil {
		t.Fatal(err)
	}

	// Fill the slow subscription with work its handler cannot drain yet
	// (well within the lane bound so nothing blocks the dispatcher).
	const slowMsgs = 8
	for i := 0; i < slowMsgs; i++ {
		if err := c.Publish("lane/slow", []byte(fmt.Sprintf("s%d", i)), wire.QoS0, false); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-slowStarted:
	case <-time.After(2 * time.Second):
		t.Fatal("slow handler never started")
	}

	// The fast subscription must still be live while slow is wedged.
	if err := c.Publish("lane/fast", []byte("hello"), wire.QoS0, false); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-fastGot:
		if got != "hello" {
			t.Fatalf("fast delivery = %q", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("fast subscription stalled behind the slow handler")
	}

	// Release the slow handler: every queued message must arrive, in
	// publish order (per-subscription FIFO).
	close(release)
	deadline := time.Now().Add(2 * time.Second)
	for {
		slowMu.Lock()
		n := len(slowGot)
		slowMu.Unlock()
		if n == slowMsgs {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow handler drained %d/%d messages", n, slowMsgs)
		}
		time.Sleep(time.Millisecond)
	}
	slowMu.Lock()
	defer slowMu.Unlock()
	for i, got := range slowGot {
		if want := fmt.Sprintf("s%d", i); got != want {
			t.Fatalf("slow order[%d] = %q, want %q", i, got, want)
		}
	}
}

// With LaneDropNewest a wedged subscription sheds load instead of applying
// backpressure, and the shed messages show up in the drop gauge.
func TestLaneDropNewestShedsAndCounts(t *testing.T) {
	fb := newFakeBroker(t)
	reg := telemetry.NewRegistry()
	opts := NewOptions("dropper")
	opts.DispatchBuffer = 2
	opts.LanePolicy = LaneDropNewest
	opts.Registry = reg
	c := fb.connect(t, opts)
	defer c.Close()

	release := make(chan struct{})
	started := make(chan struct{}, 1)
	if _, err := c.Subscribe("lane/wedge", wire.QoS0, func(m Message) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
	}); err != nil {
		t.Fatal(err)
	}

	const sent = 20
	for i := 0; i < sent; i++ {
		if err := c.Publish("lane/wedge", []byte{byte(i)}, wire.QoS0, false); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-started:
	case <-time.After(2 * time.Second):
		t.Fatal("handler never started")
	}

	// 1 in the handler + 2 buffered; the rest must be counted as drops
	// once the dispatcher has seen all 20.
	wantDrops := float64(sent - 1 - opts.DispatchBuffer)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got := laneGauge(t, reg, "ifot_client_lane_dropped_total", "lane/wedge"); got == wantDrops {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("drop gauge = %v, want %v", got, wantDrops)
		}
		time.Sleep(time.Millisecond)
	}
	if got := laneGauge(t, reg, "ifot_client_lane_depth", "lane/wedge"); got != float64(opts.DispatchBuffer) {
		t.Fatalf("depth gauge = %v, want %v", got, opts.DispatchBuffer)
	}
	close(release)
}

// laneGauge reads one lane telemetry sample by metric name and filter label.
func laneGauge(t *testing.T, reg *telemetry.Registry, name, filter string) float64 {
	t.Helper()
	for _, s := range reg.Samples() {
		if s.Name != name {
			continue
		}
		for _, l := range s.Labels {
			if l.Name == "filter" && l.Value == filter {
				return s.Value
			}
		}
	}
	return -1
}

// Removing one of two registrations on the same filter must stop its lane
// while the sibling keeps receiving.
func TestRemoveStopsOnlyOneLane(t *testing.T) {
	fb := newFakeBroker(t)
	c := fb.connect(t, NewOptions("remover"))
	defer c.Close()

	keep := make(chan string, 4)
	_, regA, err := c.SubscribeHandle("lane/shared", wire.QoS0, func(m Message) {
		t.Errorf("removed handler got %q", m.Payload)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.SubscribeHandle("lane/shared", wire.QoS0, func(m Message) {
		keep <- string(m.Payload)
	}); err != nil {
		t.Fatal(err)
	}
	regA.Remove()

	if err := c.Publish("lane/shared", []byte("ping"), wire.QoS0, false); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-keep:
		if got != "ping" {
			t.Fatalf("sibling got %q", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sibling lane stalled after Remove")
	}
}
