// Package mqttclient implements an MQTT 3.1.1 client used by the IFoT
// Publish and Subscribe classes. It supports QoS 0/1 publishing with
// acknowledgement tracking, wildcard subscriptions with per-subscription
// handlers, keep-alive pings, wills, and clean/persistent sessions.
package mqttclient

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ifot-middleware/ifot/internal/telemetry"
	"github.com/ifot-middleware/ifot/internal/wire"
)

// Errors returned by the client.
var (
	ErrConnRefused  = errors.New("mqttclient: connection refused")
	ErrClosed       = errors.New("mqttclient: closed")
	ErrAckTimeout   = errors.New("mqttclient: acknowledgement timeout")
	ErrSubRejected  = errors.New("mqttclient: subscription rejected")
	ErrNotConnected = errors.New("mqttclient: not connected")
)

// Message is an application message received from the broker.
type Message struct {
	Topic   string
	Payload []byte
	QoS     wire.QoS
	Retain  bool
	Dup     bool
}

// Handler consumes received messages. Each handler registration gets its
// own bounded FIFO dispatch lane with a dedicated goroutine: messages for
// one registration are delivered sequentially in arrival order (MQTT's
// per-subscription ordering guarantee), but distinct registrations run
// concurrently — a slow handler on one subscription does not stall the
// others beyond its lane bound. A handler function registered under several
// filters may therefore be invoked concurrently and must be safe for
// concurrent use.
type Handler func(Message)

// LanePolicy selects what happens when a subscription's dispatch lane is
// full.
type LanePolicy int

const (
	// LaneBlock (default) applies backpressure: the dispatcher waits for
	// space, eventually stalling the connection reader (and thus TCP).
	// Nothing is ever dropped, matching QoS expectations.
	LaneBlock LanePolicy = iota
	// LaneDropNewest drops the incoming message for the full lane only
	// (other lanes still receive it) and counts it in the lane-drop
	// telemetry gauge. Use for lossy real-time feeds where stale data is
	// worse than missing data.
	LaneDropNewest
)

// Options configures a client connection.
type Options struct {
	// ClientID identifies the session; required unless CleanSession.
	ClientID string
	// CleanSession requests a fresh session (default true via NewOptions).
	CleanSession bool
	// KeepAlive is the keep-alive interval; zero disables pings.
	KeepAlive time.Duration
	// AckTimeout bounds waits for PUBACK/SUBACK/UNSUBACK (default 10s).
	AckTimeout time.Duration
	// DispatchBuffer sizes the reader's dispatch queue and each handler
	// registration's lane (default 256).
	DispatchBuffer int
	// LanePolicy selects the full-lane behavior (default LaneBlock).
	LanePolicy LanePolicy
	// Will, when set, is registered as the connection's will message.
	Will *Message
	// Username/Password are optional credentials.
	Username string
	Password []byte
	// MaxPacketSize bounds inbound packets (default 1 MiB).
	MaxPacketSize int
	// OnDisconnect, when set, is invoked once when the connection ends
	// for any reason other than an explicit Disconnect call.
	OnDisconnect func(error)
	// OnBeforeDisconnect, when set, is invoked at the start of an
	// explicit Disconnect, while the connection is still usable — a last
	// chance to flush buffered state (e.g. pending trace spans) before
	// the DISCONNECT packet goes out.
	OnBeforeDisconnect func()
	// DefaultHandler, when set, receives messages that match no
	// registered subscription handler (e.g. persistent-session messages
	// replayed before Subscribe re-registers its handler).
	DefaultHandler Handler
	// OnLaneDrop, when set with LaneDropNewest, is invoked from the
	// dispatcher each time a full lane sheds a message, with the lane's
	// subscription filter. It runs on the dispatch hot path — keep it
	// cheap (rate-limit any downstream reporting in the callback).
	OnLaneDrop func(filter string)
	// Registry, when set, receives client metrics: publish/receive
	// counters and a QoS1 publish→PUBACK round-trip histogram.
	Registry *telemetry.Registry
}

// NewOptions returns Options with sensible defaults for the given client ID.
func NewOptions(clientID string) Options {
	return Options{
		ClientID:     clientID,
		CleanSession: true,
		KeepAlive:    30 * time.Second,
	}
}

func (o Options) withDefaults() Options {
	if o.AckTimeout <= 0 {
		o.AckTimeout = 10 * time.Second
	}
	if o.DispatchBuffer <= 0 {
		o.DispatchBuffer = 256
	}
	if o.MaxPacketSize <= 0 {
		o.MaxPacketSize = 1 << 20
	}
	return o
}

// lane is one handler registration's bounded FIFO dispatch queue, drained
// by a dedicated goroutine so registrations never head-of-line block each
// other. depth tracks queued-but-unhandled messages; drops is shared by
// every lane on the same filter so the counter survives lane churn.
type lane struct {
	ch       chan Message
	quit     chan struct{}
	quitOnce sync.Once
	depth    atomic.Int64
	drops    *atomic.Int64
	filter   string
}

func (l *lane) stop() { l.quitOnce.Do(func() { close(l.quit) }) }

type subscription struct {
	id     int64
	filter string
	lane   *lane
}

// HandlerRegistration identifies one registered handler so it can be
// removed without disturbing other handlers sharing the same filter.
type HandlerRegistration struct {
	client *Client
	id     int64
	filter string
}

// Filter reports the topic filter this registration was made under.
func (r *HandlerRegistration) Filter() string { return r.filter }

// Remove detaches just this handler and stops its lane; messages still
// queued in the lane are discarded. No broker traffic is generated; call
// Client.Unsubscribe when the filter itself is no longer needed.
func (r *HandlerRegistration) Remove() {
	r.client.mu.Lock()
	defer r.client.mu.Unlock()
	kept := r.client.subs[:0]
	for _, s := range r.client.subs {
		if s.id != r.id {
			kept = append(kept, s)
		} else {
			s.lane.stop()
		}
	}
	r.client.subs = kept
}

// Client is an MQTT client bound to one connection. Use Connect to create
// one; all methods are safe for concurrent use.
type Client struct {
	opts Options
	conn net.Conn

	writeMu sync.Mutex // serializes packet writes

	mu           sync.Mutex
	subs         []subscription
	subID        int64
	pending      map[uint16]chan wire.Packet // awaiting acks, keyed by packet ID
	nextPacketID uint16
	closed       bool
	closeErr     error
	laneDrops    map[string]*atomic.Int64 // per-filter drop counters (lanes share)

	dispatch    chan Message
	defaultLane *lane         // lane for Options.DefaultHandler (nil if unset)
	done        chan struct{} // closed when the reader exits
	wg          sync.WaitGroup
	laneWg      sync.WaitGroup // lane goroutines; waited after wg

	metrics *clientMetrics
}

// clientMetrics holds the client's telemetry handles (nil when no Registry
// was configured). Series are labeled by client ID so several clients can
// share one registry.
type clientMetrics struct {
	published *telemetry.Counter
	received  *telemetry.Counter
	ackRTT    *telemetry.Histogram
}

func newClientMetrics(reg *telemetry.Registry, clientID string) *clientMetrics {
	id := telemetry.L("client", clientID)
	return &clientMetrics{
		published: reg.Counter("ifot_client_publish_total", "PUBLISH packets sent", id),
		received:  reg.Counter("ifot_client_received_total", "PUBLISH packets received", id),
		ackRTT: reg.Histogram("ifot_client_puback_seconds",
			"QoS1 publish to PUBACK round-trip", nil, id),
	}
}

// Connect establishes an MQTT session over an existing transport
// connection. On success the client owns conn.
func Connect(conn net.Conn, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	connect := &wire.ConnectPacket{
		ClientID:     opts.ClientID,
		CleanSession: opts.CleanSession,
		KeepAlive:    uint16(opts.KeepAlive / time.Second),
	}
	if opts.Will != nil {
		connect.WillFlag = true
		connect.WillTopic = opts.Will.Topic
		connect.WillMessage = opts.Will.Payload
		connect.WillQoS = opts.Will.QoS
		connect.WillRetain = opts.Will.Retain
	}
	if opts.Username != "" {
		connect.HasUsername = true
		connect.Username = opts.Username
	}
	if opts.Password != nil {
		connect.HasPassword = true
		connect.Password = opts.Password
	}

	if err := wire.WritePacket(conn, connect); err != nil {
		return nil, fmt.Errorf("mqttclient connect: %w", err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(opts.AckTimeout))
	pkt, err := wire.ReadPacket(conn, opts.MaxPacketSize)
	if err != nil {
		return nil, fmt.Errorf("mqttclient connack: %w", err)
	}
	_ = conn.SetReadDeadline(time.Time{})
	connack, ok := pkt.(*wire.ConnackPacket)
	if !ok {
		return nil, fmt.Errorf("%w: expected CONNACK, got %v", ErrConnRefused, pkt.Type())
	}
	if connack.Code != wire.ConnAccepted {
		return nil, fmt.Errorf("%w: code %d", ErrConnRefused, connack.Code)
	}

	c := &Client{
		opts:      opts,
		conn:      conn,
		pending:   make(map[uint16]chan wire.Packet),
		laneDrops: make(map[string]*atomic.Int64),
		dispatch:  make(chan Message, opts.DispatchBuffer),
		done:      make(chan struct{}),
	}
	if opts.Registry != nil {
		c.metrics = newClientMetrics(opts.Registry, opts.ClientID)
	}
	if opts.DefaultHandler != nil {
		c.defaultLane = c.newLane("(default)")
		c.laneWg.Add(1)
		go c.laneLoop(c.defaultLane, opts.DefaultHandler)
		c.registerLaneMetrics("(default)")
	}
	c.wg.Add(2)
	go c.readLoop()
	go c.dispatchLoop()
	if opts.KeepAlive > 0 {
		c.wg.Add(1)
		go c.pingLoop()
	}
	return c, nil
}

// Dial connects a TCP transport to addr and establishes an MQTT session.
func Dial(addr string, opts Options) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("mqttclient dial %s: %w", addr, err)
	}
	c, err := Connect(conn, opts)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	return c, nil
}

// Publish sends an application message. For QoS1 it blocks until the broker
// acknowledges (or AckTimeout elapses).
func (c *Client) Publish(topic string, payload []byte, qos wire.QoS, retain bool) error {
	pub := &wire.PublishPacket{Topic: topic, Payload: payload, QoS: qos, Retain: retain}
	if qos == wire.QoS0 {
		err := c.write(pub)
		if err == nil && c.metrics != nil {
			c.metrics.published.Inc()
		}
		return err
	}
	id, ackCh, err := c.registerPending()
	if err != nil {
		return err
	}
	pub.PacketID = id
	sentAt := time.Now()
	if err := c.write(pub); err != nil {
		c.unregisterPending(id)
		return err
	}
	ack, err := c.waitAck(id, ackCh)
	if err != nil {
		return err
	}
	if ack.Type() != wire.PUBACK {
		return fmt.Errorf("mqttclient: unexpected ack %v for publish", ack.Type())
	}
	if c.metrics != nil {
		c.metrics.published.Inc()
		c.metrics.ackRTT.ObserveDuration(time.Since(sentAt))
	}
	return nil
}

// Subscribe registers handler for messages matching filter and blocks until
// the broker confirms the subscription, returning the granted QoS.
func (c *Client) Subscribe(filter string, qos wire.QoS, handler Handler) (wire.QoS, error) {
	granted, _, err := c.SubscribeHandle(filter, qos, handler)
	return granted, err
}

// SubscribeHandle is Subscribe returning additionally a registration that
// can remove just this handler (leaving other handlers on the same filter
// intact).
func (c *Client) SubscribeHandle(filter string, qos wire.QoS, handler Handler) (wire.QoS, *HandlerRegistration, error) {
	if handler == nil {
		return 0, nil, errors.New("mqttclient: nil handler")
	}
	if err := wire.ValidateTopicFilter(filter); err != nil {
		return 0, nil, err
	}
	id, ackCh, err := c.registerPending()
	if err != nil {
		return 0, nil, err
	}

	// The handler must be live before SUBSCRIBE hits the wire: the broker
	// may deliver retained replay in the same TCP segment as the SUBACK,
	// and a handler registered only after the ack races the read loop and
	// silently drops that replay.
	c.mu.Lock()
	if c.closed {
		// The reader may have exited (and swept the lanes) between
		// registerPending and here; a lane started now would leak.
		c.mu.Unlock()
		c.unregisterPending(id)
		return 0, nil, ErrClosed
	}
	c.subID++
	ln := c.newLane(filter)
	reg := &HandlerRegistration{client: c, id: c.subID, filter: filter}
	c.subs = append(c.subs, subscription{id: c.subID, filter: filter, lane: ln})
	c.laneWg.Add(1)
	go c.laneLoop(ln, handler)
	c.mu.Unlock()
	c.registerLaneMetrics(filter)

	sub := &wire.SubscribePacket{
		PacketID:      id,
		Subscriptions: []wire.Subscription{{TopicFilter: filter, QoS: qos}},
	}
	if err := c.write(sub); err != nil {
		c.unregisterPending(id)
		reg.Remove()
		return 0, nil, err
	}
	ack, err := c.waitAck(id, ackCh)
	if err != nil {
		reg.Remove()
		return 0, nil, err
	}
	suback, ok := ack.(*wire.SubackPacket)
	if !ok || len(suback.ReturnCodes) != 1 {
		reg.Remove()
		return 0, nil, fmt.Errorf("mqttclient: malformed SUBACK")
	}
	if suback.ReturnCodes[0] == wire.SubackFailure {
		reg.Remove()
		return 0, nil, ErrSubRejected
	}
	return wire.QoS(suback.ReturnCodes[0]), reg, nil
}

// Unsubscribe removes the subscription for filter and its handlers.
func (c *Client) Unsubscribe(filter string) error {
	id, ackCh, err := c.registerPending()
	if err != nil {
		return err
	}
	unsub := &wire.UnsubscribePacket{PacketID: id, TopicFilters: []string{filter}}
	if err := c.write(unsub); err != nil {
		c.unregisterPending(id)
		return err
	}
	if _, err := c.waitAck(id, ackCh); err != nil {
		return err
	}
	c.mu.Lock()
	kept := c.subs[:0]
	for _, s := range c.subs {
		if s.filter != filter {
			kept = append(kept, s)
		} else {
			s.lane.stop()
		}
	}
	c.subs = kept
	c.mu.Unlock()
	return nil
}

// Disconnect sends DISCONNECT and closes the connection gracefully.
func (c *Client) Disconnect() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.mu.Unlock()
	if c.opts.OnBeforeDisconnect != nil {
		c.opts.OnBeforeDisconnect()
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.closeErr = ErrClosed
	c.mu.Unlock()

	_ = c.write(&wire.DisconnectPacket{})
	_ = c.conn.Close()
	c.wg.Wait()
	c.laneWg.Wait()
	return nil
}

// Close tears the connection down without the DISCONNECT handshake
// (the broker will fire the will message, if any).
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.closeErr = ErrClosed
	c.mu.Unlock()
	_ = c.conn.Close()
	c.wg.Wait()
	c.laneWg.Wait()
	return nil
}

// Done returns a channel closed when the connection has ended.
func (c *Client) Done() <-chan struct{} { return c.done }

func (c *Client) write(p wire.Packet) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if err := wire.WritePacket(c.conn, p); err != nil {
		return fmt.Errorf("mqttclient write %v: %w", p.Type(), err)
	}
	return nil
}

func (c *Client) registerPending() (uint16, chan wire.Packet, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, nil, ErrClosed
	}
	for {
		c.nextPacketID++
		if c.nextPacketID == 0 {
			c.nextPacketID = 1
		}
		if _, used := c.pending[c.nextPacketID]; !used {
			break
		}
	}
	ch := make(chan wire.Packet, 1)
	c.pending[c.nextPacketID] = ch
	return c.nextPacketID, ch, nil
}

func (c *Client) unregisterPending(id uint16) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

func (c *Client) waitAck(id uint16, ch chan wire.Packet) (wire.Packet, error) {
	defer c.unregisterPending(id)
	select {
	case pkt := <-ch:
		return pkt, nil
	case <-c.done:
		return nil, ErrNotConnected
	case <-time.After(c.opts.AckTimeout):
		return nil, ErrAckTimeout
	}
}

func (c *Client) readLoop() {
	defer c.wg.Done()
	var readErr error
	for {
		pkt, err := wire.ReadPacket(c.conn, c.opts.MaxPacketSize)
		if err != nil {
			readErr = err
			break
		}
		switch p := pkt.(type) {
		case *wire.PublishPacket:
			c.handleInboundPublish(p)
		case *wire.AckPacket:
			switch p.PacketType {
			case wire.PUBACK, wire.UNSUBACK:
				c.resolvePending(p.PacketID, p)
			case wire.PUBREC:
				_ = c.write(&wire.AckPacket{PacketType: wire.PUBREL, PacketID: p.PacketID})
			case wire.PUBCOMP:
				c.resolvePending(p.PacketID, p)
			case wire.PUBREL:
				_ = c.write(&wire.AckPacket{PacketType: wire.PUBCOMP, PacketID: p.PacketID})
			}
		case *wire.SubackPacket:
			c.resolvePending(p.PacketID, p)
		case *wire.PingrespPacket:
			// Liveness confirmed; nothing to do.
		default:
			// Unexpected packet from broker; ignore.
		}
	}

	c.mu.Lock()
	wasClosed := c.closed
	c.closed = true
	if c.closeErr == nil {
		c.closeErr = readErr
	}
	c.mu.Unlock()

	close(c.done)
	close(c.dispatch)
	_ = c.conn.Close()
	if !wasClosed && c.opts.OnDisconnect != nil {
		c.opts.OnDisconnect(readErr)
	}
}

func (c *Client) resolvePending(id uint16, pkt wire.Packet) {
	c.mu.Lock()
	ch, ok := c.pending[id]
	c.mu.Unlock()
	if ok {
		select {
		case ch <- pkt:
		default:
		}
	}
}

func (c *Client) handleInboundPublish(p *wire.PublishPacket) {
	if c.metrics != nil {
		c.metrics.received.Inc()
	}
	if p.QoS == wire.QoS1 {
		_ = c.write(&wire.AckPacket{PacketType: wire.PUBACK, PacketID: p.PacketID})
	}
	// The dispatch send applies TCP backpressure when handlers are slow:
	// the reader stalls rather than dropping messages.
	c.dispatch <- Message{
		Topic:   p.Topic,
		Payload: p.Payload,
		QoS:     p.QoS,
		Retain:  p.Retain,
		Dup:     p.Dup,
	}
}

// newLane builds a lane bound to the per-filter drop counter. Callers hold
// c.mu (or are in Connect, before any concurrency).
func (c *Client) newLane(filter string) *lane {
	drops, ok := c.laneDrops[filter]
	if !ok {
		drops = &atomic.Int64{}
		c.laneDrops[filter] = drops
	}
	return &lane{
		ch:     make(chan Message, c.opts.DispatchBuffer),
		quit:   make(chan struct{}),
		drops:  drops,
		filter: filter,
	}
}

// registerLaneMetrics exposes the filter's aggregate lane depth and drop
// count as collection-time gauges. Idempotent per (client, filter): the
// registry dedups series by name+labels.
func (c *Client) registerLaneMetrics(filter string) {
	if c.opts.Registry == nil {
		return
	}
	labels := []telemetry.Label{
		telemetry.L("client", c.opts.ClientID),
		telemetry.L("filter", filter),
	}
	c.opts.Registry.GaugeFunc("ifot_client_lane_depth",
		"messages queued in dispatch lanes, by subscription filter",
		func() float64 {
			var depth int64
			c.mu.Lock()
			for _, s := range c.subs {
				if s.filter == filter {
					depth += s.lane.depth.Load()
				}
			}
			c.mu.Unlock()
			if filter == "(default)" && c.defaultLane != nil {
				depth += c.defaultLane.depth.Load()
			}
			return float64(depth)
		}, labels...)
	c.opts.Registry.GaugeFunc("ifot_client_lane_dropped_total",
		"messages dropped by full dispatch lanes (LaneDropNewest only)",
		func() float64 {
			c.mu.Lock()
			drops := c.laneDrops[filter]
			c.mu.Unlock()
			if drops == nil {
				return 0
			}
			return float64(drops.Load())
		}, labels...)
}

// enqueue places msg on ln according to the lane policy. Only the
// dispatcher goroutine sends on lane channels, which is what makes the
// shutdown close(ln.ch) in dispatchLoop safe.
func (c *Client) enqueue(ln *lane, msg Message) {
	if c.opts.LanePolicy == LaneDropNewest {
		select {
		case ln.ch <- msg:
			ln.depth.Add(1)
		case <-ln.quit:
		default:
			ln.drops.Add(1)
			if c.opts.OnLaneDrop != nil {
				c.opts.OnLaneDrop(ln.filter)
			}
		}
		return
	}
	select {
	case ln.ch <- msg:
		ln.depth.Add(1)
	case <-ln.quit:
		// Lane removed while we were blocked; drop silently, matching the
		// pre-lane semantics where a removed handler stops receiving.
	}
}

// laneLoop drains one lane, running its handler sequentially — the
// per-subscription ordering guarantee.
func (c *Client) laneLoop(ln *lane, h Handler) {
	defer c.laneWg.Done()
	for {
		select {
		case <-ln.quit:
			return
		default:
		}
		select {
		case <-ln.quit:
			return
		case msg, ok := <-ln.ch:
			if !ok {
				return
			}
			ln.depth.Add(-1)
			h(msg)
		}
	}
}

// dispatchLoop matches each inbound message against the subscription table
// and fans it out to the matching lanes. Matching stays centralized (one
// goroutine, read-mostly table) while handler execution is per-lane, so one
// slow handler delays the others only once its own lane is full (LaneBlock)
// or never (LaneDropNewest).
func (c *Client) dispatchLoop() {
	defer c.wg.Done()
	var lanes []*lane // scratch, reused across messages
	for msg := range c.dispatch {
		lanes = lanes[:0]
		c.mu.Lock()
		for _, s := range c.subs {
			if wire.MatchTopic(s.filter, msg.Topic) {
				lanes = append(lanes, s.lane)
			}
		}
		c.mu.Unlock()
		if len(lanes) == 0 {
			if c.defaultLane != nil {
				c.enqueue(c.defaultLane, msg)
			}
			continue
		}
		for _, ln := range lanes {
			c.enqueue(ln, msg)
		}
	}
	// The reader has exited and set closed, so no new lanes can appear:
	// close every lane channel so the lane goroutines drain and exit.
	c.mu.Lock()
	for _, s := range c.subs {
		close(s.lane.ch)
	}
	c.mu.Unlock()
	if c.defaultLane != nil {
		close(c.defaultLane.ch)
	}
}

func (c *Client) pingLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.opts.KeepAlive)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if err := c.write(&wire.PingreqPacket{}); err != nil {
				return
			}
		case <-c.done:
			return
		}
	}
}
