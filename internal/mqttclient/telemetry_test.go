package mqttclient

import (
	"testing"
	"time"

	"github.com/ifot-middleware/ifot/internal/telemetry"
	"github.com/ifot-middleware/ifot/internal/wire"
)

func TestClientMetrics(t *testing.T) {
	fb := newFakeBroker(t)
	reg := telemetry.NewRegistry()
	conn, err := fb.listener.Dial()
	if err != nil {
		t.Fatal(err)
	}
	opts := NewOptions("metered")
	opts.Registry = reg
	c, err := Connect(conn, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	seen := make(chan Message, 8)
	if _, err := c.Subscribe("t", wire.QoS0, func(m Message) { seen <- m }); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish("t", []byte("a"), wire.QoS0, false); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish("t", []byte("b"), wire.QoS1, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-seen:
		case <-time.After(5 * time.Second):
			t.Fatal("echo timeout")
		}
	}

	id := telemetry.L("client", "metered")
	if n := reg.Counter("ifot_client_publish_total", "", id).Value(); n != 2 {
		t.Fatalf("published = %d, want 2", n)
	}
	if n := reg.Counter("ifot_client_received_total", "", id).Value(); n != 2 {
		t.Fatalf("received = %d, want 2", n)
	}
	if n := reg.Histogram("ifot_client_puback_seconds", "", nil, id).Count(); n != 1 {
		t.Fatalf("puback RTT samples = %d, want 1 (QoS1 publish only)", n)
	}
}
