package mqttclient

import (
	"errors"
	"net"
	"testing"
	"time"

	"github.com/ifot-middleware/ifot/internal/broker"
	"github.com/ifot-middleware/ifot/internal/netsim"
	"github.com/ifot-middleware/ifot/internal/wire"
)

func TestClientDialTCP(t *testing.T) {
	b := broker.New(broker.Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = b.Serve(l) }()
	t.Cleanup(func() { _ = b.Close() })

	c, err := Dial(l.Addr().String(), NewOptions("dialer"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Publish("t", []byte("x"), wire.QoS1, false); err != nil {
		t.Fatal(err)
	}
}

func TestClientDialRefused(t *testing.T) {
	// Nothing listens on this port (bind then close to reserve).
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()
	if _, err := Dial(addr, NewOptions("nope")); err == nil {
		t.Fatal("Dial to closed port succeeded")
	}
}

func TestClientDoneClosesOnServerDrop(t *testing.T) {
	fb := newFakeBroker(t)
	c := fb.connect(t, NewOptions("c"))
	select {
	case <-c.Done():
		t.Fatal("Done closed while connected")
	default:
	}
	_ = c.conn.Close()
	select {
	case <-c.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("Done not closed after transport loss")
	}
}

func TestHandlerRegistrationRemove(t *testing.T) {
	fb := newFakeBroker(t)
	c := fb.connect(t, NewOptions("c"))

	first := make(chan Message, 4)
	second := make(chan Message, 4)
	_, reg1, err := c.SubscribeHandle("shared/t", wire.QoS0, func(m Message) { first <- m })
	if err != nil {
		t.Fatal(err)
	}
	if reg1.Filter() != "shared/t" {
		t.Fatalf("Filter() = %q", reg1.Filter())
	}
	if _, _, err := c.SubscribeHandle("shared/t", wire.QoS0, func(m Message) { second <- m }); err != nil {
		t.Fatal(err)
	}

	// Removing one handler must leave the other attached.
	reg1.Remove()
	if err := c.Publish("shared/t", []byte("x"), wire.QoS0, false); err != nil {
		t.Fatal(err)
	}
	select {
	case <-second:
	case <-time.After(5 * time.Second):
		t.Fatal("surviving handler not invoked")
	}
	select {
	case <-first:
		t.Fatal("removed handler invoked")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestClientAckTimeout(t *testing.T) {
	// A server that accepts the connection but never acks publishes.
	listener := netsim.NewPipeListener()
	t.Cleanup(func() { _ = listener.Close() })
	go func() {
		conn, err := listener.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := wire.ReadPacket(conn, 0); err != nil { // CONNECT
			return
		}
		_ = wire.WritePacket(conn, &wire.ConnackPacket{Code: wire.ConnAccepted})
		for { // swallow everything silently
			if _, err := wire.ReadPacket(conn, 0); err != nil {
				return
			}
		}
	}()

	conn, err := listener.Dial()
	if err != nil {
		t.Fatal(err)
	}
	opts := NewOptions("quiet")
	opts.AckTimeout = 50 * time.Millisecond
	c, err := Connect(conn, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Publish("t", []byte("x"), wire.QoS1, false); !errors.Is(err, ErrAckTimeout) {
		t.Fatalf("err = %v, want ErrAckTimeout", err)
	}
}

func TestClientConnectRejectsNonConnack(t *testing.T) {
	listener := netsim.NewPipeListener()
	t.Cleanup(func() { _ = listener.Close() })
	go func() {
		conn, err := listener.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := wire.ReadPacket(conn, 0); err != nil {
			return
		}
		_ = wire.WritePacket(conn, &wire.PingrespPacket{}) // not a CONNACK
		time.Sleep(time.Second)
	}()
	conn, err := listener.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := Connect(conn, NewOptions("x")); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("err = %v, want ErrConnRefused", err)
	}
}

func TestClientQoS1RetainedPublishFlagPreserved(t *testing.T) {
	fb := newFakeBroker(t)
	c := fb.connect(t, NewOptions("c"))
	if err := c.Publish("t", []byte("x"), wire.QoS1, true); err != nil {
		t.Fatal(err)
	}
	for _, p := range fb.packets() {
		if pub, ok := p.(*wire.PublishPacket); ok {
			if !pub.Retain {
				t.Fatal("retain flag lost on the wire")
			}
			return
		}
	}
	t.Fatal("publish never reached the fake broker")
}

func TestClientInboundQoS1IsAcked(t *testing.T) {
	// Real broker: subscribing at QoS1 and receiving a QoS1 message
	// requires the client to PUBACK or the broker would keep it inflight.
	b := broker.New(broker.Options{})
	listener := netsim.NewPipeListener()
	go func() { _ = b.Serve(listener) }()
	t.Cleanup(func() { _ = b.Close(); _ = listener.Close() })

	subConn, _ := listener.Dial()
	sub, err := Connect(subConn, NewOptions("sub"))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	got := make(chan Message, 1)
	if _, err := sub.Subscribe("q1/t", wire.QoS1, func(m Message) { got <- m }); err != nil {
		t.Fatal(err)
	}

	pubConn, _ := listener.Dial()
	pub, err := Connect(pubConn, NewOptions("pub"))
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish("q1/t", []byte("x"), wire.QoS1, false); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.QoS != wire.QoS1 {
			t.Fatalf("QoS = %v", m.QoS)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery")
	}
	// The broker's inflight window must drain (client acked).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if b.Stats().MessagesDelivered >= 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("delivery not accounted")
}
