package mqttclient

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/ifot-middleware/ifot/internal/netsim"
	"github.com/ifot-middleware/ifot/internal/wire"
)

// fakeBroker implements just enough broker behaviour to unit-test the
// client against scripted responses.
type fakeBroker struct {
	listener *netsim.PipeListener
	mu       sync.Mutex
	inbound  []wire.Packet
}

func newFakeBroker(t *testing.T) *fakeBroker {
	t.Helper()
	fb := &fakeBroker{listener: netsim.NewPipeListener()}
	go fb.serve()
	t.Cleanup(func() { _ = fb.listener.Close() })
	return fb
}

func (fb *fakeBroker) serve() {
	for {
		conn, err := fb.listener.Accept()
		if err != nil {
			return
		}
		go func() {
			defer conn.Close()
			for {
				pkt, err := wire.ReadPacket(conn, 0)
				if err != nil {
					return
				}
				fb.mu.Lock()
				fb.inbound = append(fb.inbound, pkt)
				fb.mu.Unlock()
				switch p := pkt.(type) {
				case *wire.ConnectPacket:
					_ = wire.WritePacket(conn, &wire.ConnackPacket{Code: wire.ConnAccepted})
				case *wire.PublishPacket:
					if p.QoS == wire.QoS1 {
						_ = wire.WritePacket(conn, &wire.AckPacket{PacketType: wire.PUBACK, PacketID: p.PacketID})
					}
					// Echo back to exercise the dispatch path.
					echo := *p
					echo.QoS = wire.QoS0
					echo.PacketID = 0
					_ = wire.WritePacket(conn, &echo)
				case *wire.SubscribePacket:
					codes := make([]byte, len(p.Subscriptions))
					for i, s := range p.Subscriptions {
						codes[i] = byte(s.QoS)
					}
					_ = wire.WritePacket(conn, &wire.SubackPacket{PacketID: p.PacketID, ReturnCodes: codes})
				case *wire.UnsubscribePacket:
					_ = wire.WritePacket(conn, &wire.AckPacket{PacketType: wire.UNSUBACK, PacketID: p.PacketID})
				case *wire.PingreqPacket:
					_ = wire.WritePacket(conn, &wire.PingrespPacket{})
				case *wire.DisconnectPacket:
					return
				}
			}
		}()
	}
}

func (fb *fakeBroker) connect(t *testing.T, opts Options) *Client {
	t.Helper()
	conn, err := fb.listener.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Connect(conn, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func (fb *fakeBroker) packets() []wire.Packet {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return append([]wire.Packet(nil), fb.inbound...)
}

func TestClientPublishQoS0NoAck(t *testing.T) {
	fb := newFakeBroker(t)
	c := fb.connect(t, NewOptions("c"))
	if err := c.Publish("t", []byte("x"), wire.QoS0, false); err != nil {
		t.Fatal(err)
	}
}

func TestClientPublishQoS1WaitsForAck(t *testing.T) {
	fb := newFakeBroker(t)
	c := fb.connect(t, NewOptions("c"))
	if err := c.Publish("t", []byte("x"), wire.QoS1, false); err != nil {
		t.Fatal(err)
	}
}

func TestClientSubscribeRoutesOnlyMatching(t *testing.T) {
	fb := newFakeBroker(t)
	c := fb.connect(t, NewOptions("c"))

	matched := make(chan Message, 2)
	other := make(chan Message, 2)
	if _, err := c.Subscribe("a/+", wire.QoS0, func(m Message) { matched <- m }); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Subscribe("b/#", wire.QoS0, func(m Message) { other <- m }); err != nil {
		t.Fatal(err)
	}

	// The fake broker echoes publishes back regardless of subscriptions;
	// the client-side router must still route by filter.
	if err := c.Publish("a/x", []byte("m"), wire.QoS0, false); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-matched:
		if m.Topic != "a/x" {
			t.Fatalf("routed topic = %q", m.Topic)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("matching handler not invoked")
	}
	select {
	case m := <-other:
		t.Fatalf("non-matching handler invoked with %+v", m)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestClientSubscribeInvalidFilter(t *testing.T) {
	fb := newFakeBroker(t)
	c := fb.connect(t, NewOptions("c"))
	if _, err := c.Subscribe("bad/#/filter", wire.QoS0, func(Message) {}); !errors.Is(err, wire.ErrInvalidTopic) {
		t.Fatalf("err = %v, want ErrInvalidTopic", err)
	}
}

func TestClientSubscribeNilHandler(t *testing.T) {
	fb := newFakeBroker(t)
	c := fb.connect(t, NewOptions("c"))
	if _, err := c.Subscribe("t", wire.QoS0, nil); err == nil {
		t.Fatal("Subscribe(nil handler) succeeded")
	}
}

func TestClientUnsubscribeRemovesHandler(t *testing.T) {
	fb := newFakeBroker(t)
	c := fb.connect(t, NewOptions("c"))
	got := make(chan Message, 2)
	if _, err := c.Subscribe("t", wire.QoS0, func(m Message) { got <- m }); err != nil {
		t.Fatal(err)
	}
	if err := c.Unsubscribe("t"); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish("t", []byte("x"), wire.QoS0, false); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
		t.Fatal("handler invoked after Unsubscribe")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestClientDefaultHandler(t *testing.T) {
	fb := newFakeBroker(t)
	opts := NewOptions("c")
	unrouted := make(chan Message, 1)
	opts.DefaultHandler = func(m Message) { unrouted <- m }
	c := fb.connect(t, opts)

	if err := c.Publish("nobody/listens", []byte("x"), wire.QoS0, false); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-unrouted:
		if m.Topic != "nobody/listens" {
			t.Fatalf("default handler topic = %q", m.Topic)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("default handler not invoked")
	}
}

func TestClientOperationsAfterCloseFail(t *testing.T) {
	fb := newFakeBroker(t)
	c := fb.connect(t, NewOptions("c"))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish("t", nil, wire.QoS1, false); err == nil {
		t.Fatal("Publish after Close succeeded")
	}
	if _, err := c.Subscribe("t", wire.QoS0, func(Message) {}); err == nil {
		t.Fatal("Subscribe after Close succeeded")
	}
}

func TestClientOnDisconnectFiresOnBrokerDrop(t *testing.T) {
	fb := newFakeBroker(t)
	disconnected := make(chan error, 1)
	opts := NewOptions("c")
	opts.OnDisconnect = func(err error) { disconnected <- err }
	c := fb.connect(t, opts)

	_ = fb.listener.Close()
	// Force the server side closed by closing our transport peer: the
	// fake broker exits when the read fails.
	_ = c.conn.Close()

	select {
	case <-disconnected:
	case <-time.After(5 * time.Second):
		t.Fatal("OnDisconnect not invoked")
	}
}

func TestClientOnDisconnectNotFiredOnExplicitDisconnect(t *testing.T) {
	fb := newFakeBroker(t)
	disconnected := make(chan error, 1)
	opts := NewOptions("c")
	opts.OnDisconnect = func(err error) { disconnected <- err }
	c := fb.connect(t, opts)

	if err := c.Disconnect(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-disconnected:
		t.Fatalf("OnDisconnect(%v) fired on explicit Disconnect", err)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestClientKeepAlivePings(t *testing.T) {
	fb := newFakeBroker(t)
	opts := NewOptions("c")
	opts.KeepAlive = 20 * time.Millisecond
	_ = fb.connect(t, opts)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, p := range fb.packets() {
			if p.Type() == wire.PINGREQ {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no PINGREQ observed")
}

func TestClientConcurrentPublishes(t *testing.T) {
	fb := newFakeBroker(t)
	c := fb.connect(t, NewOptions("c"))
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Publish("t", []byte("x"), wire.QoS1, false); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent publish: %v", err)
	}
}

func TestClientDoubleCloseIsSafe(t *testing.T) {
	fb := newFakeBroker(t)
	c := fb.connect(t, NewOptions("c"))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Disconnect(); err != nil {
		t.Fatal(err)
	}
}
