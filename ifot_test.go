package ifot_test

import (
	"context"
	"testing"
	"time"

	"github.com/ifot-middleware/ifot"
)

// TestPublicAPIQuickPipeline drives the full stack through the public
// facade only: testbed, module, manager, recipe, decisions.
func TestPublicAPIQuickPipeline(t *testing.T) {
	testbed := ifot.NewTestbed()
	defer testbed.Close()

	decisions := make(chan ifot.Decision, 64)
	module := ifot.NewModule(ifot.ModuleConfig{
		ID: "api-node", CapacityOps: 500, Dial: testbed.Dial(),
		Observer: ifot.Observer{OnDecision: func(d ifot.Decision) {
			select {
			case decisions <- d:
			default:
			}
		}},
	})
	module.RegisterSensor(&ifot.Sensor{
		ID: "t1", Kind: ifot.Temperature, RateHz: 50,
		Gen: ifot.GaussianNoise(20, 1, 3),
	})

	manager := ifot.NewManager(ifot.ManagerConfig{Dial: testbed.Dial()})
	if err := manager.Start(); err != nil {
		t.Fatal(err)
	}
	defer manager.Close()
	if err := module.Start(); err != nil {
		t.Fatal(err)
	}
	defer module.Close()

	deadline := time.Now().Add(10 * time.Second)
	for len(manager.Modules()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("module never announced")
		}
		time.Sleep(5 * time.Millisecond)
	}

	dep, err := manager.Deploy(&ifot.Recipe{
		Name: "api-test",
		Tasks: []ifot.Task{
			{ID: "sense", Kind: ifot.KindSense, Output: "api/raw",
				Params: map[string]string{"sensor": "t1"}},
			{ID: "watch", Kind: ifot.KindAnomaly, Inputs: []string{"task:sense"},
				Output: "api/alerts"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := dep.WaitRunning(ctx); err != nil {
		t.Fatal(err)
	}

	select {
	case d := <-decisions:
		if d.Recipe != "api-test" || d.Kind != "anomaly" {
			t.Fatalf("decision = %+v", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no decisions through public API")
	}
}

// TestTCPTestbed exercises the broker over a real TCP socket through the
// facade.
func TestTCPTestbed(t *testing.T) {
	testbed, err := ifot.NewTCPTestbed("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer testbed.Close()
	if testbed.Addr() == "" {
		t.Fatal("TCP testbed has no address")
	}

	a := ifot.NewModule(ifot.ModuleConfig{ID: "tcp-a", Dial: testbed.Dial()})
	bm := ifot.NewModule(ifot.ModuleConfig{ID: "tcp-b", Dial: testbed.Dial()})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := bm.Start(); err != nil {
		t.Fatal(err)
	}
	defer bm.Close()

	got := make(chan []byte, 1)
	if err := bm.Subscribe("tcp/topic", func(msg ifot.Message) {
		select {
		case got <- msg.Payload:
		default:
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Publish("tcp/topic", []byte("over-tcp")); err != nil {
		t.Fatal(err)
	}
	select {
	case payload := <-got:
		if string(payload) != "over-tcp" {
			t.Fatalf("payload = %q", payload)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no delivery over TCP testbed")
	}
}

// TestRecipeJSONRoundTripThroughFacade checks the recipe language entry
// points.
func TestRecipeJSONRoundTripThroughFacade(t *testing.T) {
	rec := &ifot.Recipe{
		Name:    "json-rt",
		Version: 3,
		Tasks: []ifot.Task{
			{ID: "sense", Kind: ifot.KindSense, Output: "j/raw"},
			{ID: "window", Kind: ifot.KindWindow, Inputs: []string{"task:sense"},
				Output: "j/win", Params: map[string]string{"size": "8"}},
		},
	}
	data, err := ifot.MarshalRecipe(rec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ifot.ParseRecipe(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != rec.Name || back.Version != 3 || len(back.Tasks) != 2 {
		t.Fatalf("round trip = %+v", back)
	}
	if _, err := ifot.ParseRecipe([]byte(`{"name":"bad","tasks":[]}`)); err == nil {
		t.Fatal("ParseRecipe accepted invalid recipe")
	}
}

// TestPayloadHelpers checks the facade's sample/batch/decision codecs.
func TestPayloadHelpers(t *testing.T) {
	s := ifot.Sample{SensorIndex: 2, Kind: ifot.Sound, Seq: 5, Timestamp: time.Unix(9, 0)}
	single, err := ifot.DecodeSamples(s.Encode())
	if err != nil || len(single) != 1 || single[0].Seq != 5 {
		t.Fatalf("DecodeSamples(single) = %v, %v", single, err)
	}
	encoded, err := ifot.EncodeBatch([]ifot.Sample{s, s})
	if err != nil {
		t.Fatalf("EncodeBatch: %v", err)
	}
	batch, err := ifot.DecodeSamples(encoded)
	if err != nil || len(batch) != 2 {
		t.Fatalf("DecodeSamples(batch) = %v, %v", batch, err)
	}
	d := ifot.Decision{Recipe: "r", TaskID: "t", Kind: "anomaly", Label: "normal", Score: 1.5}
	got, err := ifot.DecodeDecision(ifot.EncodeJSON(d))
	if err != nil || got.Label != "normal" || got.Score != 1.5 {
		t.Fatalf("DecodeDecision = %+v, %v", got, err)
	}
	if _, err := ifot.DecodeDecision([]byte("{")); err == nil {
		t.Fatal("DecodeDecision accepted malformed JSON")
	}
}

// TestVirtualActuatorFacade checks the re-exported actuator helpers.
func TestVirtualActuatorFacade(t *testing.T) {
	act := ifot.NewVirtualActuator("lamp", "on")
	if err := act.Apply(ifot.Command{Name: "on", Value: 1}); err != nil {
		t.Fatal(err)
	}
	if err := act.Apply(ifot.Command{Name: "off"}); err == nil {
		t.Fatal("whitelist not enforced through facade")
	}
}
