package ifot_test

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/ifot-middleware/ifot/internal/mqttclient"
	"github.com/ifot-middleware/ifot/internal/wire"
)

// TestBinariesEndToEnd builds the four command-line tools and drives a
// full deployment over real TCP: broker daemon, two neuron daemons, and
// the management CLI deploying examples/recipes/monitoring.json.
func TestBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binaries")
	}
	binDir := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(binDir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if output, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, output)
		}
		return out
	}
	brokerBin := build("ifot-broker")
	neuronBin := build("ifot-neuron")
	mgmtBin := build("ifot-mgmt")
	benchBin := build("ifot-bench")

	// The bench CLI must print the topology and a table against the paper.
	benchOut, err := exec.Command(benchBin, "-topology", "-table", "2", "-duration", "2s").CombinedOutput()
	if err != nil {
		t.Fatalf("ifot-bench: %v\n%s", err, benchOut)
	}
	for _, want := range []string{"Fig. 7", "TABLE II", "58.969"} {
		if !strings.Contains(string(benchOut), want) {
			t.Fatalf("bench output missing %q:\n%s", want, benchOut)
		}
	}

	freePort := func() string {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		return l.Addr().String()
	}
	addr := freePort()
	brokerTel := freePort()
	neuronTel := freePort()

	start := func(name string, args ...string) *exec.Cmd {
		cmd := exec.Command(name, args...)
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = &buf
		if err := cmd.Start(); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
			if t.Failed() {
				t.Logf("%s output:\n%s", filepath.Base(name), buf.String())
			}
		})
		return cmd
	}

	start(brokerBin, "-addr", addr, "-telemetry", brokerTel, "-stats", "500ms")
	waitForPort(t, addr)

	start(neuronBin, "-id", "moduleA", "-broker", addr,
		"-sensor", "acc1:accelerometer:20", "-telemetry", neuronTel)
	start(neuronBin, "-id", "moduleB", "-broker", addr,
		"-actuator", "light")

	// Give the neurons a moment to connect, then deploy and inspect.
	deadline := time.Now().Add(30 * time.Second)
	var out []byte
	for {
		cmd := exec.Command(mgmtBin, "-broker", addr, "-settle", "1s",
			"modules", "deploy", "examples/recipes/monitoring.json", "streams")
		out, err = cmd.CombinedOutput()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mgmt deploy failed: %v\n%s", err, out)
		}
		time.Sleep(500 * time.Millisecond)
	}
	text := string(out)
	for _, want := range []string{
		"moduleA", "moduleB", // module listing
		"all subtasks running", // deployment confirmed
		"demo/alerts",          // stream registry
		"monitoring/sense",     // assignment echo
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("mgmt output missing %q:\n%s", want, text)
		}
	}
	// Placement: the sense task must be on moduleA (sensor host), the
	// alert actuation on moduleB (actuator host).
	if !strings.Contains(text, "monitoring/sense") || !assignedTo(text, "monitoring/sense", "moduleA") {
		t.Fatalf("sense not on moduleA:\n%s", text)
	}
	if !assignedTo(text, "monitoring/alert", "moduleB") {
		t.Fatalf("alert not on moduleB:\n%s", text)
	}

	// Both daemons must serve parseable Prometheus metrics over HTTP.
	scrapeMetrics(t, brokerTel, "ifot_broker_uptime_seconds", "ifot_broker_messages_received_total")
	scrapeMetrics(t, neuronTel, "ifot_module_tasks_running", "ifot_client_publish_total")

	// The broker must expose Mosquitto-style retained uptime under $SYS.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	sysClient, err := mqttclient.Connect(conn, mqttclient.NewOptions("e2e-sys-probe"))
	if err != nil {
		t.Fatal(err)
	}
	defer sysClient.Close()
	uptime := make(chan mqttclient.Message, 4)
	if _, err := sysClient.Subscribe("$SYS/broker/uptime", wire.QoS0, func(m mqttclient.Message) {
		select {
		case uptime <- m:
		default:
		}
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-uptime:
		if !strings.HasSuffix(strings.TrimSpace(string(m.Payload)), "seconds") {
			t.Fatalf("$SYS/broker/uptime payload = %q, want \"N seconds\"", m.Payload)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("no $SYS/broker/uptime message")
	}
}

// scrapeMetrics pulls /metrics from a daemon and checks it is valid
// Prometheus text exposition containing the wanted series.
func scrapeMetrics(t *testing.T, addr string, want ...string) {
	t.Helper()
	var body string
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err == nil {
			data, rerr := io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK {
				if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
					t.Fatalf("%s /metrics Content-Type = %q", addr, ct)
				}
				body = string(data)
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("scraping %s: %v", addr, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
	for _, name := range want {
		if !strings.Contains(body, "# TYPE "+name+" ") {
			t.Fatalf("%s /metrics missing %q:\n%s", addr, name, body)
		}
	}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("%s /metrics line not `series value`: %q", addr, line)
		}
	}
}

func assignedTo(output, subtask, module string) bool {
	for _, line := range strings.Split(output, "\n") {
		if strings.Contains(line, subtask) && strings.Contains(line, "-> "+module) {
			return true
		}
	}
	return false
}

func waitForPort(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			_ = conn.Close()
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("broker never listened on %s", addr)
}
