// Benchmark harness regenerating the paper's evaluation artifacts:
//
//	BenchmarkTable2SensingTraining  — Table II rows (avg/max ms per rate)
//	BenchmarkTable3SensingPredicting — Table III rows
//	BenchmarkLatencyVsRate           — the Section V-C latency-vs-rate trend
//	BenchmarkAblation*               — the DESIGN.md ablation studies
//	Benchmark<substrate>             — microbenchmarks of the substrates
//
// Each table bench reports the measured average and maximum latency in
// milliseconds via b.ReportMetric, so `go test -bench` output can be read
// directly against the paper's tables (also printed by cmd/ifot-bench).
package ifot_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/ifot-middleware/ifot"
	"github.com/ifot-middleware/ifot/internal/core"
	"github.com/ifot-middleware/ifot/internal/device"
	"github.com/ifot-middleware/ifot/internal/experiment"
	"github.com/ifot-middleware/ifot/internal/feature"
	"github.com/ifot-middleware/ifot/internal/metrics"
	"github.com/ifot-middleware/ifot/internal/ml"
	"github.com/ifot-middleware/ifot/internal/mqttclient"
	"github.com/ifot-middleware/ifot/internal/sensor"
	"github.com/ifot-middleware/ifot/internal/wire"
)

// benchDuration is the virtual duration per experiment run inside
// benchmarks (shorter than the paper's full run; the DES makes results
// duration-stable once the queues reach steady state).
const benchDuration = 15 * time.Second

func reportRun(b *testing.B, r experiment.Result, which experiment.Table) {
	var s metrics.Summary
	if which == experiment.Table2SensingTraining {
		s = r.Training
	} else {
		s = r.Predicting
	}
	b.ReportMetric(metrics.Millis(s.Mean), "avg-ms")
	b.ReportMetric(metrics.Millis(s.Max), "max-ms")
}

func benchTable(b *testing.B, which experiment.Table, mutate func(*experiment.Config)) {
	for _, rate := range experiment.PaperRates {
		rate := rate
		b.Run(fmt.Sprintf("rate=%.0fHz", rate), func(b *testing.B) {
			var last experiment.Result
			for i := 0; i < b.N; i++ {
				cfg := experiment.DefaultConfig(rate)
				cfg.Duration = benchDuration
				if mutate != nil {
					mutate(&cfg)
				}
				last = experiment.Run(cfg)
			}
			reportRun(b, last, which)
		})
	}
}

// BenchmarkTable2SensingTraining regenerates Table II: sensing→training
// delay at 5/10/20/40/80 Hz on the Fig. 9 topology.
func BenchmarkTable2SensingTraining(b *testing.B) {
	benchTable(b, experiment.Table2SensingTraining, nil)
}

// BenchmarkTable3SensingPredicting regenerates Table III: sensing→
// predicting delay at 5/10/20/40/80 Hz.
func BenchmarkTable3SensingPredicting(b *testing.B) {
	benchTable(b, experiment.Table3SensingPredict, nil)
}

// BenchmarkLatencyVsRate sweeps the full rate axis (the Section V-C trend
// "figure"), reporting both paths per rate.
func BenchmarkLatencyVsRate(b *testing.B) {
	for _, rate := range experiment.PaperRates {
		rate := rate
		b.Run(fmt.Sprintf("rate=%.0fHz", rate), func(b *testing.B) {
			var last experiment.Result
			for i := 0; i < b.N; i++ {
				cfg := experiment.DefaultConfig(rate)
				cfg.Duration = benchDuration
				last = experiment.Run(cfg)
			}
			b.ReportMetric(metrics.Millis(last.Training.Mean), "train-avg-ms")
			b.ReportMetric(metrics.Millis(last.Predicting.Mean), "predict-avg-ms")
			b.ReportMetric(float64(last.TrainDropped), "train-dropped")
		})
	}
}

// BenchmarkAblationCloudVsLocal compares the PO3 architecture with the
// Fig. 1 cloud-centric baseline (sensing→decision-at-edge latency).
func BenchmarkAblationCloudVsLocal(b *testing.B) {
	for _, placement := range []struct {
		name string
		p    experiment.Placement
	}{{"local", experiment.PlaceLocal}, {"cloud", experiment.PlaceCloud}} {
		for _, rate := range []float64{5, 20, 80} {
			rate := rate
			placement := placement
			b.Run(fmt.Sprintf("%s/rate=%.0fHz", placement.name, rate), func(b *testing.B) {
				var last experiment.Result
				for i := 0; i < b.N; i++ {
					cfg := experiment.DefaultConfig(rate)
					cfg.Duration = benchDuration
					cfg.Placement = placement.p
					last = experiment.Run(cfg)
				}
				b.ReportMetric(metrics.Millis(last.Predicting.Mean), "predict-avg-ms")
			})
		}
	}
}

// BenchmarkAblationBrokerPlacement compares a dedicated broker module with
// a broker co-located on the training module.
func BenchmarkAblationBrokerPlacement(b *testing.B) {
	for _, co := range []bool{false, true} {
		name := "dedicated"
		if co {
			name = "colocated"
		}
		co := co
		b.Run(name+"/rate=80Hz", func(b *testing.B) {
			var last experiment.Result
			for i := 0; i < b.N; i++ {
				cfg := experiment.DefaultConfig(80)
				cfg.Duration = benchDuration
				cfg.BrokerOnTrainer = co
				last = experiment.Run(cfg)
			}
			b.ReportMetric(metrics.Millis(last.Predicting.Mean), "predict-avg-ms")
		})
	}
}

// BenchmarkAblationParallelTraining shards training across modules (the
// paper's future-work parallelization).
func BenchmarkAblationParallelTraining(b *testing.B) {
	for _, shards := range []int{1, 2, 3} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d/rate=40Hz", shards), func(b *testing.B) {
			var last experiment.Result
			for i := 0; i < b.N; i++ {
				cfg := experiment.DefaultConfig(40)
				cfg.Duration = benchDuration
				cfg.TrainShards = shards
				last = experiment.Run(cfg)
			}
			b.ReportMetric(metrics.Millis(last.Training.Mean), "train-avg-ms")
		})
	}
}

// BenchmarkAblationQoS compares QoS 0 and QoS 1 flow distribution.
func BenchmarkAblationQoS(b *testing.B) {
	for _, qos1 := range []bool{false, true} {
		name := "qos0"
		if qos1 {
			name = "qos1"
		}
		qos1 := qos1
		b.Run(name+"/rate=40Hz", func(b *testing.B) {
			var last experiment.Result
			for i := 0; i < b.N; i++ {
				cfg := experiment.DefaultConfig(40)
				cfg.Duration = benchDuration
				cfg.QoS1 = qos1
				last = experiment.Run(cfg)
			}
			b.ReportMetric(metrics.Millis(last.Training.Mean), "train-avg-ms")
		})
	}
}

// BenchmarkAblationScale grows the sensor population (the paper's
// future-work scalability question).
func BenchmarkAblationScale(b *testing.B) {
	for _, n := range []int{3, 12, 48} {
		n := n
		b.Run(fmt.Sprintf("sensors=%d/rate=10Hz", n), func(b *testing.B) {
			var last experiment.Result
			for i := 0; i < b.N; i++ {
				cfg := experiment.DefaultConfig(10)
				cfg.Duration = benchDuration
				cfg.SensorCount = n
				last = experiment.Run(cfg)
			}
			b.ReportMetric(metrics.Millis(last.Training.Mean), "train-avg-ms")
		})
	}
}

// BenchmarkAblationHardware swaps the neuron boards for Raspberry Pi 3s
// (the paper's "improve real-time processing performance" future work).
func BenchmarkAblationHardware(b *testing.B) {
	profiles := []struct {
		name    string
		profile device.Profile
	}{
		{"pi2", device.RaspberryPi2()},
		{"pi3", device.RaspberryPi3()},
	}
	for _, p := range profiles {
		for _, rate := range []float64{20, 40, 80} {
			p := p
			rate := rate
			b.Run(fmt.Sprintf("%s/rate=%.0fHz", p.name, rate), func(b *testing.B) {
				var last experiment.Result
				for i := 0; i < b.N; i++ {
					cfg := experiment.DefaultConfig(rate)
					cfg.Duration = benchDuration
					cfg.NeuronProfile = p.profile
					last = experiment.Run(cfg)
				}
				b.ReportMetric(metrics.Millis(last.Training.Mean), "train-avg-ms")
			})
		}
	}
}

// --- substrate microbenchmarks ---

// BenchmarkWirePublishRoundTrip measures MQTT PUBLISH encode+decode of a
// 32-byte sensor sample.
func BenchmarkWirePublishRoundTrip(b *testing.B) {
	payload := make([]byte, sensor.SampleSize)
	pub := &wire.PublishPacket{Topic: "ifot/sensor/a", Payload: payload, QoS: wire.QoS1, PacketID: 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := wire.Encode(pub)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.Decode(wire.PUBLISH, 0x2, data[2:]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSampleCodec measures the 32-byte sample codec.
func BenchmarkSampleCodec(b *testing.B) {
	s := sensor.Sample{SensorIndex: 1, Kind: sensor.Accelerometer, Seq: 9, Timestamp: time.Now()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sensor.DecodeSample(s.Encode()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchCodec measures the joined-batch codec (3 samples as in the
// experiment).
func BenchmarkBatchCodec(b *testing.B) {
	batch := []sensor.Sample{
		{SensorIndex: 1, Seq: 4, Timestamp: time.Now()},
		{SensorIndex: 2, Seq: 4, Timestamp: time.Now()},
		{SensorIndex: 3, Seq: 4, Timestamp: time.Now()},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		encoded, err := core.EncodeBatch(batch)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.DecodeBatch(encoded); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMLTrainPA measures one PA-I training step on experiment-sized
// feature vectors (9 features: 3 sensors × 3 channels).
func BenchmarkMLTrainPA(b *testing.B) {
	clf := ml.NewPassiveAggressive(1)
	v := feature.Vector{
		"s1.c0@num": 1, "s1.c1@num": -1, "s1.c2@num": 0.5,
		"s2.c0@num": 2, "s2.c1@num": -2, "s2.c2@num": 0.1,
		"s3.c0@num": 3, "s3.c1@num": -3, "s3.c2@num": 0.9,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		label := "pos"
		if i%2 == 1 {
			label = "neg"
		}
		clf.Train(v, label)
	}
}

// BenchmarkMLPredictPA measures one classification step.
func BenchmarkMLPredictPA(b *testing.B) {
	clf := ml.NewPassiveAggressive(1)
	v := feature.Vector{"x@num": 1, "y@num": -2, "z@num": 0.5}
	clf.Train(v, "pos")
	clf.Train(feature.Vector{"x@num": -1, "y@num": 2, "z@num": -0.5}, "neg")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := clf.Classify(v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnomalyZScore measures streaming anomaly scoring.
func BenchmarkAnomalyZScore(b *testing.B) {
	d := ml.NewZScoreDetector()
	v := feature.Vector{"t@num": 20}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Add(v)
	}
}

// BenchmarkBrokerEndToEnd measures real (non-simulated) middleware message
// throughput: publisher → broker → subscriber over in-memory transports.
func BenchmarkBrokerEndToEnd(b *testing.B) {
	testbed := ifot.NewTestbed()
	defer testbed.Close()

	subConn, err := testbed.Dial()()
	if err != nil {
		b.Fatal(err)
	}
	received := make(chan struct{}, 1024)
	sub, err := mqttclient.Connect(subConn, mqttclient.NewOptions("bench-sub"))
	if err != nil {
		b.Fatal(err)
	}
	defer sub.Close()
	if _, err := sub.Subscribe("bench/t", wire.QoS0, func(mqttclient.Message) {
		received <- struct{}{}
	}); err != nil {
		b.Fatal(err)
	}

	pubConn, err := testbed.Dial()()
	if err != nil {
		b.Fatal(err)
	}
	pub, err := mqttclient.Connect(pubConn, mqttclient.NewOptions("bench-pub"))
	if err != nil {
		b.Fatal(err)
	}
	defer pub.Close()

	payload := make([]byte, sensor.SampleSize)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := pub.Publish("bench/t", payload, wire.QoS0, false); err != nil {
			b.Fatal(err)
		}
		<-received
	}
}
