package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/ifot-middleware/ifot/internal/broker"
	"github.com/ifot-middleware/ifot/internal/feature"
	"github.com/ifot-middleware/ifot/internal/ml"
	"github.com/ifot-middleware/ifot/internal/store"
	"github.com/ifot-middleware/ifot/internal/wire"
)

// durabilityConfig parameterizes the -durability sweeps.
type durabilityConfig struct {
	batch    int           // -wal-batch: SyncBatchAppends for the group-commit table
	duration time.Duration // wall-clock per group-commit row
}

// runDurability characterizes the durable-state subsystem along the three
// axes an operator tunes: how long recovery takes as the WAL grows, what
// a model checkpoint costs at each interval, and how the group-commit
// window trades loss-window size against fsync amortization.
func runDurability(cfg durabilityConfig) error {
	if err := benchRecovery(); err != nil {
		return err
	}
	if err := benchCheckpointOverhead(); err != nil {
		return err
	}
	return benchGroupCommit(cfg)
}

// benchRecovery fills a file-backed broker with journaled retained-message
// mutations, kills it, and times the snapshot+WAL replay on reopen.
func benchRecovery() error {
	fmt.Println("DURABILITY: broker recovery time vs WAL size (retained-message records)")
	fmt.Printf("%-10s %-12s %-14s %-14s\n", "records", "WAL bytes", "recovery", "records/sec")
	for _, n := range []int{1_000, 10_000, 50_000} {
		dir, err := os.MkdirTemp("", "ifot-durability-*")
		if err != nil {
			return err
		}
		st, err := store.Open(dir, store.Options{Name: "bench", NoSync: true})
		if err != nil {
			return err
		}
		b, err := broker.Open(broker.Options{Store: st, SnapshotBytes: 1 << 40})
		if err != nil {
			return err
		}
		payload := make([]byte, 64)
		for i := 0; i < n; i++ {
			// Distinct topics so every record survives into recovery
			// instead of collapsing last-writer-wins.
			b.Publish(fmt.Sprintf("bench/retained/%d", i), payload, wire.QoS1, true)
		}
		if err := b.Close(); err != nil {
			return err
		}
		if err := st.Close(); err != nil {
			return err
		}

		st2, err := store.Open(dir, store.Options{Name: "bench", NoSync: true})
		if err != nil {
			return err
		}
		walBytes := st2.WALBytes()
		startRecover := time.Now()
		b2, err := broker.Open(broker.Options{Store: st2, SnapshotBytes: 1 << 40})
		if err != nil {
			return err
		}
		recovery := time.Since(startRecover)
		if got := b2.Stats().RetainedMessages; got != n {
			return fmt.Errorf("recovery dropped state: %d/%d retained", got, n)
		}
		_ = b2.Close()
		_ = st2.Close()
		_ = os.RemoveAll(dir)
		fmt.Printf("%-10d %-12d %-14s %-14.0f\n", n, walBytes, recovery.Round(time.Microsecond),
			float64(n)/recovery.Seconds())
	}
	fmt.Println()
	return nil
}

// benchCheckpointOverhead trains a zscore detector over a realistic
// feature width, measures one checkpoint (state capture + durable
// append), and amortizes that cost over candidate checkpoint intervals.
func benchCheckpointOverhead() error {
	fmt.Println("DURABILITY: model checkpoint cost, amortized per -checkpoint-interval")
	dir, err := os.MkdirTemp("", "ifot-durability-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir, store.Options{Name: "ckpt", NoSync: true})
	if err != nil {
		return err
	}
	defer st.Close()

	det := ml.NewZScoreDetector()
	vec := make(feature.Vector, 16)
	for f := 0; f < 16; f++ {
		vec[fmt.Sprintf("sensor%d.ch%d", f/3, f%3)] = 0
	}
	for i := 0; i < 10_000; i++ {
		for name := range vec {
			vec[name] = float64(i % 97)
		}
		det.Add(vec)
	}

	const rounds = 1_000
	var blobBytes int
	startCkpt := time.Now()
	for i := 0; i < rounds; i++ {
		blob, err := det.CheckpointState()
		if err != nil {
			return err
		}
		blobBytes = len(blob)
		if err := st.AppendSync(blob); err != nil {
			return err
		}
	}
	perCkpt := time.Since(startCkpt) / rounds

	fmt.Printf("one checkpoint (16-feature zscore): %s capture+append, %d-byte blob\n",
		perCkpt.Round(time.Microsecond), blobBytes)
	fmt.Printf("%-12s %-16s\n", "interval", "overhead")
	for _, interval := range []time.Duration{
		time.Second, 5 * time.Second, 30 * time.Second, 5 * time.Minute,
	} {
		fmt.Printf("%-12s %.5f%%\n", interval, 100*float64(perCkpt)/float64(interval))
	}
	fmt.Println()
	return nil
}

// benchGroupCommit drives concurrent synchronous appenders against one
// WAL and reports how many appends each physical fsync absorbed. The
// -wal-batch flag additionally caps the number of appends per flush
// (store.Options.SyncBatchAppends), bounding the loss window by count.
func benchGroupCommit(cfg durabilityConfig) error {
	fmt.Println("DURABILITY: group-commit fsync amortization (8 writers, 256-byte records)")
	if cfg.batch > 0 {
		fmt.Printf("(append batch bound: flush every %d appends)\n", cfg.batch)
	}
	fmt.Printf("%-12s %-14s %-10s %-16s\n", "sync delay", "appends/sec", "fsyncs", "appends/fsync")
	for _, delay := range []time.Duration{
		100 * time.Microsecond, time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond,
	} {
		dir, err := os.MkdirTemp("", "ifot-durability-*")
		if err != nil {
			return err
		}
		st, err := store.Open(dir, store.Options{
			Name:             "commit",
			SyncDelay:        delay,
			SyncBatchAppends: cfg.batch,
		})
		if err != nil {
			return err
		}
		rec := make([]byte, 256)
		const writers = 8
		var total int64
		var mu sync.Mutex
		var wg sync.WaitGroup
		stop := time.Now().Add(cfg.duration)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				n := int64(0)
				for time.Now().Before(stop) {
					if err := st.AppendSync(rec); err != nil {
						break
					}
					n++
				}
				mu.Lock()
				total += n
				mu.Unlock()
			}()
		}
		wg.Wait()
		fsyncs := st.Fsyncs()
		_ = st.Close()
		_ = os.RemoveAll(dir)
		perFsync := float64(total)
		if fsyncs > 0 {
			perFsync = float64(total) / float64(fsyncs)
		}
		fmt.Printf("%-12s %-14.0f %-10d %-16.1f\n", delay,
			float64(total)/cfg.duration.Seconds(), fsyncs, perFsync)
	}
	fmt.Println()
	return nil
}
