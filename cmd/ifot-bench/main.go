// Command ifot-bench regenerates every quantitative artifact of the
// paper's evaluation: Table II (sensing→training delay), Table III
// (sensing→predicting delay), the Section V-C latency-vs-rate trend, the
// Fig. 7 topology, the Fig. 9 pipeline trace, and the ablation studies
// catalogued in DESIGN.md.
//
// Usage:
//
//	ifot-bench -table 2          # Table II, measured vs paper
//	ifot-bench -table 2 -breakdown  # + per-stage latency decomposition
//	ifot-bench -table 3          # Table III
//	ifot-bench -sweep            # both tables + shape check
//	ifot-bench -ablation all     # cloud/broker/parallel/qos/scale
//	ifot-bench -topology -trace  # print Fig. 7 / Fig. 9 structure
//	ifot-bench -throughput       # saturate a real broker over loopback TCP
//	ifot-bench -tsweep           # the same saturation run across a GOMAXPROCS ladder
//	ifot-bench -analysis         # analyzed msgs/sec through dispatch lanes + dense classify
//	ifot-bench -durability       # WAL recovery time, checkpoint overhead, group-commit sweep
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/ifot-middleware/ifot/internal/device"
	"github.com/ifot-middleware/ifot/internal/experiment"
	"github.com/ifot-middleware/ifot/internal/metrics"
	"github.com/ifot-middleware/ifot/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ifot-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		table      = flag.Int("table", 0, "reproduce one table (2 or 3)")
		sweep      = flag.Bool("sweep", false, "run the full rate sweep (both tables + shape check)")
		ablation   = flag.String("ablation", "", "run ablations: cloud|broker|parallel|qos|scale|all")
		topology   = flag.Bool("topology", false, "print the Fig. 7 evaluation topology")
		breakdown  = flag.Bool("breakdown", false, "decompose table latencies per pipeline stage")
		realtime   = flag.Bool("realtime", false, "run the Fig. 9 pipeline on the live middleware stack")
		throughput = flag.Bool("throughput", false, "saturate a real broker over loopback TCP and report msgs/sec")
		tsweep     = flag.Bool("tsweep", false, "repeat the throughput saturation run across a GOMAXPROCS ladder (1, 4, all cores) and print the scaling curve")
		tpubs      = flag.Int("tpubs", 4, "throughput mode: concurrent publishers")
		tsubs      = flag.Int("tsubs", 64, "throughput mode: subscribers on the bench topic")
		tpayload   = flag.Int("tpayload", 128, "throughput mode: payload bytes")
		tduration  = flag.Duration("tduration", 3*time.Second, "throughput mode: wall-clock run time")
		durability = flag.Bool("durability", false, "characterize the durable-state subsystem: recovery time vs WAL size, checkpoint overhead vs interval, group-commit amortization")
		walBatch   = flag.Int("wal-batch", 0, "durability mode: flush the WAL every N appends in addition to the sync-delay window (0 = time-based only)")
		dduration  = flag.Duration("dduration", time.Second, "durability mode: wall-clock time per group-commit row")
		analysis   = flag.Bool("analysis", false, "drive the dense analysis hot path over broker + dispatch lanes and report analyzed msgs/sec")
		mix        = flag.Bool("mix", false, "drive the MIX weight exchange over a live broker and compare the JSON, binary-full, and binary-delta wire strategies")
		mixRounds  = flag.Int("mixrounds", 300, "mix mode: exchange rounds per strategy")
		mixFeats   = flag.Int("mixfeatures", 1500, "mix mode: model feature-space size")
		atopics    = flag.Int("atopics", 4, "analysis mode: subscriptions (dispatch lanes)")
		asensors   = flag.Int("asensors", 3, "analysis mode: sensor streams joined per batch")
		awindow    = flag.Int("awindow", 128, "analysis mode: paced in-flight window (zero-drop)")
		aduration  = flag.Duration("aduration", 3*time.Second, "analysis mode: wall-clock run time")
		events     = flag.Bool("events", false, "tail the cluster event stream: subscribe ifot/ctrl/events/# on -ebroker and pretty-print structured events")
		ebroker    = flag.String("ebroker", "localhost:1883", "events mode: broker address to tail")
		eduration  = flag.Duration("eduration", 0, "events mode: stop after this long (0 = until interrupted)")
		trace      = flag.Bool("trace", false, "print the Fig. 9 class-cooperation pipeline")
		csvPath    = flag.String("csv", "", "also write the sweep series as CSV to this file")
		duration   = flag.Duration("duration", 30*time.Second, "virtual duration per run")
		seed       = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	mutate := func(c *experiment.Config) {
		c.Duration = *duration
		c.Seed = *seed
	}

	did := false
	if *topology {
		printTopology()
		did = true
	}
	if *trace {
		printTrace()
		did = true
	}
	if *table == 2 || *table == 3 || *sweep {
		results := experiment.RunSweep(experiment.PaperRates, mutate)
		if *table == 2 || *sweep {
			fmt.Println(experiment.Format(experiment.Table2SensingTraining, results))
			if *breakdown {
				printBreakdown("sensing→training", results,
					func(r experiment.Result) ([]telemetry.StageStat, time.Duration) {
						return r.TrainStages, r.Training.Mean
					})
			}
		}
		if *table == 3 || *sweep {
			fmt.Println(experiment.Format(experiment.Table3SensingPredict, results))
			if *breakdown {
				printBreakdown("sensing→predicting", results,
					func(r experiment.Result) ([]telemetry.StageStat, time.Duration) {
						return r.PredictStages, r.Predicting.Mean
					})
			}
		}
		if *csvPath != "" {
			if err := writeCSV(*csvPath, results); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *csvPath)
		}
		if *sweep {
			printTrend(results)
			if v := experiment.ShapeReport(results, results); len(v) > 0 {
				fmt.Println("SHAPE VIOLATIONS:")
				for _, claim := range v {
					fmt.Println("  -", claim)
				}
			} else {
				fmt.Println("shape check: all Section V-C claims hold")
			}
		}
		did = true
	}
	if *realtime {
		if err := runRealtime(); err != nil {
			return err
		}
		did = true
	}
	if *throughput {
		if err := runThroughput(throughputConfig{
			publishers:  *tpubs,
			subscribers: *tsubs,
			payload:     *tpayload,
			duration:    *tduration,
		}); err != nil {
			return err
		}
		did = true
	}
	if *tsweep {
		if err := runThroughputSweep(throughputConfig{
			publishers:  *tpubs,
			subscribers: *tsubs,
			payload:     *tpayload,
			duration:    *tduration,
		}); err != nil {
			return err
		}
		did = true
	}
	if *durability {
		if err := runDurability(durabilityConfig{
			batch:    *walBatch,
			duration: *dduration,
		}); err != nil {
			return err
		}
		did = true
	}
	if *analysis {
		if err := runAnalysis(analysisConfig{
			topics:   *atopics,
			sensors:  *asensors,
			window:   *awindow,
			duration: *aduration,
		}); err != nil {
			return err
		}
		did = true
	}
	if *mix {
		if err := runMix(mixConfig{rounds: *mixRounds, features: *mixFeats}); err != nil {
			return err
		}
		did = true
	}
	if *events {
		if err := runEventTail(*ebroker, *eduration); err != nil {
			return err
		}
		did = true
	}
	if *ablation != "" {
		if err := runAblations(*ablation, mutate); err != nil {
			return err
		}
		did = true
	}
	if !did {
		flag.Usage()
	}
	return nil
}

func printTopology() {
	fmt.Println(`Fig. 7 evaluation topology (all on one wireless LAN):

  Management Node (ThinkPad X250) ──┐
                                    │ control topics (ifot/ctrl/#)
  ┌────────┬────────┬────────┬──────┴─┬────────┬────────┐
  moduleA  moduleB  moduleC  moduleD  moduleE  moduleF
  (sense)  (sense)  (sense)  (broker) (train)  (predict)
                                               └─ actuator node
  All neuron modules: Raspberry Pi 2 (ARM Cortex-A7 900 MHz, 1 GB).`)
	fmt.Println()
}

func printTrace() {
	fmt.Println(`Fig. 9 class cooperation (per sample at rate R on each of A, B, C):

  Training path (Table II):
    Sensor class (A/B/C) -> Publish class -> [WLAN] -> Broker class (D)
      -> [WLAN] -> Subscribe class (E) -> join(A,B,C) -> Train class (E)

  Predicting path (Table III):
    Sensor class (A/B/C) -> Publish class -> [WLAN] -> Broker class (D)
      -> [WLAN] -> Subscribe class (F) -> join(A,B,C) -> Predict class (F)
      -> Actuator class`)
	fmt.Println()
}

// printBreakdown renders the per-stage decomposition of one path's
// latency: each cell is that stage's mean contribution in ms, and the
// stage means telescope, so Σstages should equal the e2e average (the
// final column reports the residual, expected ≈0).
func printBreakdown(path string, results []experiment.Result,
	pick func(experiment.Result) ([]telemetry.StageStat, time.Duration)) {
	if len(results) == 0 {
		return
	}
	stages, _ := pick(results[0])
	fmt.Printf("Stage decomposition, %s avg (ms):\n", path)
	fmt.Printf("%-10s", "rate(Hz)")
	for _, st := range stages {
		fmt.Printf(" %-10s", st.Stage)
	}
	fmt.Printf(" %-10s %-10s\n", "Σstages", "e2e(Δ%)")
	for _, r := range results {
		stages, e2e := pick(r)
		fmt.Printf("%-10.0f", r.Config.RateHz)
		var sum time.Duration
		for _, st := range stages {
			fmt.Printf(" %-10.1f", metrics.Millis(st.Mean))
			sum += st.Mean
		}
		delta := 0.0
		if e2e > 0 {
			delta = 100 * (float64(sum) - float64(e2e)) / float64(e2e)
		}
		fmt.Printf(" %-10.1f %.1f (%+.2f%%)\n", metrics.Millis(sum), metrics.Millis(e2e), delta)
	}
	fmt.Println()
}

func printTrend(results []experiment.Result) {
	fmt.Println("Latency vs sensing rate (Section V-C trend; percentiles over the run):")
	fmt.Printf("%-10s %-14s %-10s %-10s %-10s %-14s %-10s %-10s %-10s %-10s %-10s\n",
		"rate(Hz)", "train avg(ms)", "p50", "p95", "p99",
		"pred avg(ms)", "p50", "p95", "p99", "trainDrop", "predDrop")
	for _, r := range results {
		fmt.Printf("%-10.0f %-14.1f %-10.1f %-10.1f %-10.1f %-14.1f %-10.1f %-10.1f %-10.1f %-10d %-10d\n",
			r.Config.RateHz,
			metrics.Millis(r.Training.Mean),
			metrics.Millis(r.Training.P50), metrics.Millis(r.Training.P95), metrics.Millis(r.Training.P99),
			metrics.Millis(r.Predicting.Mean),
			metrics.Millis(r.Predicting.P50), metrics.Millis(r.Predicting.P95), metrics.Millis(r.Predicting.P99),
			r.TrainDropped, r.PredictDropped)
	}
	fmt.Println()
}

func runAblations(which string, mutate func(*experiment.Config)) error {
	all := which == "all"
	any := false
	if all || strings.Contains(which, "cloud") {
		ablateCloud(mutate)
		any = true
	}
	if all || strings.Contains(which, "broker") {
		ablateBroker(mutate)
		any = true
	}
	if all || strings.Contains(which, "parallel") {
		ablateParallel(mutate)
		any = true
	}
	if all || strings.Contains(which, "qos") {
		ablateQoS(mutate)
		any = true
	}
	if all || strings.Contains(which, "scale") {
		ablateScale(mutate)
		any = true
	}
	if all || strings.Contains(which, "hardware") {
		ablateHardware(mutate)
		any = true
	}
	if all || strings.Contains(which, "quality") {
		ablateQuality()
		any = true
	}
	if !any {
		return fmt.Errorf("unknown ablation %q (want cloud|broker|parallel|qos|scale|hardware|quality|all)", which)
	}
	return nil
}

func ablateCloud(mutate func(*experiment.Config)) {
	fmt.Println("ABLATION: local (PO3) vs cloud-centric (Fig. 1 paradigms)")
	fmt.Printf("%-10s %-20s %-20s\n", "rate(Hz)", "local pred avg(ms)", "cloud pred avg(ms)")
	for _, rate := range experiment.PaperRates {
		local := experiment.DefaultConfig(rate)
		mutate(&local)
		cloud := local
		cloud.Placement = experiment.PlaceCloud
		lr, cr := experiment.Run(local), experiment.Run(cloud)
		fmt.Printf("%-10.0f %-20.1f %-20.1f\n", rate,
			metrics.Millis(lr.Predicting.Mean), metrics.Millis(cr.Predicting.Mean))
	}
	fmt.Println()
}

func ablateBroker(mutate func(*experiment.Config)) {
	fmt.Println("ABLATION: broker placement (dedicated module D vs co-located with trainer)")
	fmt.Printf("%-10s %-22s %-22s\n", "rate(Hz)", "dedicated pred(ms)", "co-located pred(ms)")
	for _, rate := range experiment.PaperRates {
		ded := experiment.DefaultConfig(rate)
		mutate(&ded)
		co := ded
		co.BrokerOnTrainer = true
		dr, cr := experiment.Run(ded), experiment.Run(co)
		fmt.Printf("%-10.0f %-22.1f %-22.1f\n", rate,
			metrics.Millis(dr.Predicting.Mean), metrics.Millis(cr.Predicting.Mean))
	}
	fmt.Println()
}

func ablateParallel(mutate func(*experiment.Config)) {
	fmt.Println("ABLATION: parallel training (paper future work: task parallelization)")
	fmt.Printf("%-10s %-16s %-16s %-16s\n", "rate(Hz)", "1 shard (ms)", "2 shards (ms)", "3 shards (ms)")
	for _, rate := range experiment.PaperRates {
		row := make([]float64, 0, 3)
		for _, shards := range []int{1, 2, 3} {
			cfg := experiment.DefaultConfig(rate)
			mutate(&cfg)
			cfg.TrainShards = shards
			r := experiment.Run(cfg)
			row = append(row, metrics.Millis(r.Training.Mean))
		}
		fmt.Printf("%-10.0f %-16.1f %-16.1f %-16.1f\n", rate, row[0], row[1], row[2])
	}
	fmt.Println()
}

func ablateQoS(mutate func(*experiment.Config)) {
	fmt.Println("ABLATION: QoS 0 vs QoS 1 flow distribution")
	fmt.Printf("%-10s %-18s %-18s %-14s %-14s\n", "rate(Hz)", "QoS0 train(ms)", "QoS1 train(ms)", "QoS0 brokerU", "QoS1 brokerU")
	for _, rate := range experiment.PaperRates {
		q0 := experiment.DefaultConfig(rate)
		mutate(&q0)
		q1 := q0
		q1.QoS1 = true
		r0, r1 := experiment.Run(q0), experiment.Run(q1)
		fmt.Printf("%-10.0f %-18.1f %-18.1f %-14.2f %-14.2f\n", rate,
			metrics.Millis(r0.Training.Mean), metrics.Millis(r1.Training.Mean),
			r0.Utilization["moduleD(raspberry-pi-2)"], r1.Utilization["moduleD(raspberry-pi-2)"])
	}
	fmt.Println()
}

func ablateScale(mutate func(*experiment.Config)) {
	fmt.Println("ABLATION: sensor-count scaling at 10 Hz (paper future work: scalability)")
	fmt.Printf("%-10s %-16s %-12s %-20s %-12s\n", "sensors",
		"1-broker tr(ms)", "brokerU", "2-broker tr(ms)", "brokerU")
	for _, n := range []int{3, 6, 12, 24, 48} {
		cfg := experiment.DefaultConfig(10)
		mutate(&cfg)
		cfg.SensorCount = n
		single := experiment.Run(cfg)
		fed := cfg
		fed.BrokerCount = 2
		dual := experiment.Run(fed)
		fmt.Printf("%-10d %-16.1f %-12.2f %-20.1f %-12.2f\n", n,
			metrics.Millis(single.Training.Mean),
			single.Utilization["moduleD(raspberry-pi-2)"],
			metrics.Millis(dual.Training.Mean),
			dual.Utilization["moduleD(raspberry-pi-2)"])
	}
	fmt.Println()
}

func runRealtime() error {
	fmt.Println("LIVE PIPELINE (real middleware, host-speed, in-memory transports):")
	fmt.Printf("%-10s %-16s %-10s %-10s %-16s %-10s %-10s %-10s\n",
		"rate(Hz)", "train avg(ms)", "p95", "p99", "pred avg(ms)", "p95", "p99", "joins")
	for _, rate := range []float64{5, 20, 50} {
		res, err := experiment.RunRealtime(experiment.RealtimeConfig{
			RateHz:   rate,
			Duration: 3 * time.Second,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-10.0f %-16.2f %-10.2f %-10.2f %-16.2f %-10.2f %-10.2f %-10d\n", rate,
			metrics.Millis(res.Training.Mean),
			metrics.Millis(res.Training.P95), metrics.Millis(res.Training.P99),
			metrics.Millis(res.Predicting.Mean),
			metrics.Millis(res.Predicting.P95), metrics.Millis(res.Predicting.P99),
			res.SamplesJoined)
	}
	fmt.Println()
	return nil
}

// writeCSV dumps the sweep series (the paper's trend "figure" data) for
// external plotting.
func writeCSV(path string, results []experiment.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	header := []string{"rate_hz",
		"train_avg_ms", "train_max_ms", "train_dropped",
		"predict_avg_ms", "predict_max_ms", "predict_dropped"}
	if err := w.Write(header); err != nil {
		return err
	}
	for _, r := range results {
		row := []string{
			strconv.FormatFloat(r.Config.RateHz, 'f', -1, 64),
			strconv.FormatFloat(metrics.Millis(r.Training.Mean), 'f', 3, 64),
			strconv.FormatFloat(metrics.Millis(r.Training.Max), 'f', 3, 64),
			strconv.FormatInt(r.TrainDropped, 10),
			strconv.FormatFloat(metrics.Millis(r.Predicting.Mean), 'f', 3, 64),
			strconv.FormatFloat(metrics.Millis(r.Predicting.Max), 'f', 3, 64),
			strconv.FormatInt(r.PredictDropped, 10),
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

func ablateHardware(mutate func(*experiment.Config)) {
	fmt.Println("ABLATION: neuron hardware (Raspberry Pi 2 vs Pi 3 — future-work performance)")
	fmt.Printf("%-10s %-18s %-18s %-18s %-18s\n", "rate(Hz)",
		"Pi2 train(ms)", "Pi3 train(ms)", "Pi2 pred(ms)", "Pi3 pred(ms)")
	for _, rate := range experiment.PaperRates {
		pi2 := experiment.DefaultConfig(rate)
		mutate(&pi2)
		pi3 := pi2
		pi3.NeuronProfile = device.RaspberryPi3()
		r2, r3 := experiment.Run(pi2), experiment.Run(pi3)
		fmt.Printf("%-10.0f %-18.1f %-18.1f %-18.1f %-18.1f\n", rate,
			metrics.Millis(r2.Training.Mean), metrics.Millis(r3.Training.Mean),
			metrics.Millis(r2.Predicting.Mean), metrics.Millis(r3.Predicting.Mean))
	}
	fmt.Println()
}

func ablateQuality() {
	fmt.Println("SUPPLEMENTARY: anomaly-detector quality (precision/recall on injected anomalies)")
	fmt.Printf("%-10s %-12s %-12s %-10s %-10s\n", "detector", "threshold", "precision", "recall", "F1")
	for _, tc := range []struct {
		detector  string
		threshold float64
	}{
		{"zscore", 3}, {"zscore", 6}, {"zscore", 9},
		{"knn", 10}, {"knn", 50}, {"knn", 100},
	} {
		r := experiment.RunDetectionQuality(experiment.DefaultQualityConfig(tc.detector, tc.threshold))
		fmt.Printf("%-10s %-12.1f %-12.3f %-10.3f %-10.3f\n",
			tc.detector, tc.threshold, r.Precision(), r.Recall(), r.F1())
	}
	fmt.Println()
}
