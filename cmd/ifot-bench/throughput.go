package main

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ifot-middleware/ifot/internal/broker"
	"github.com/ifot-middleware/ifot/internal/wire"
)

// throughputConfig parameterizes the broker TCP saturation run.
type throughputConfig struct {
	publishers  int
	subscribers int
	payload     int
	duration    time.Duration
}

// runThroughput drives a real broker over loopback TCP to saturation:
// tpubs raw publishers each blast a pre-encoded QoS0 PUBLISH frame at one
// topic while tsubs subscribers drain their connections, and the run
// reports ingress/egress message rates plus queue-overflow drops from the
// broker's own counters. Unlike the go-bench fan-out benchmark (which
// paces publishers to measure sustained no-drop delivery), this mode is
// deliberately unpaced: it answers "what does the broker do when offered
// more load than it can deliver".
func runThroughput(cfg throughputConfig) error {
	br := broker.New(broker.Options{SessionQueueSize: 8192})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = br.Serve(l)
	}()
	addr := l.Addr().String()

	const topic = "bench/throughput"

	handshake := func(id string) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		if err := wire.WritePacket(conn, &wire.ConnectPacket{ClientID: id, CleanSession: true}); err != nil {
			conn.Close()
			return nil, err
		}
		if _, err := wire.ReadPacket(conn, 0); err != nil {
			conn.Close()
			return nil, fmt.Errorf("CONNACK: %w", err)
		}
		return conn, nil
	}

	// Subscribers: wire-level sinks that subscribe once and then drain.
	subConns := make([]net.Conn, 0, cfg.subscribers)
	for i := 0; i < cfg.subscribers; i++ {
		conn, err := handshake(fmt.Sprintf("tsub-%d", i))
		if err != nil {
			return err
		}
		subConns = append(subConns, conn)
		sub := &wire.SubscribePacket{
			PacketID:      1,
			Subscriptions: []wire.Subscription{{TopicFilter: topic, QoS: wire.QoS0}},
		}
		if err := wire.WritePacket(conn, sub); err != nil {
			return err
		}
		if _, err := wire.ReadPacket(conn, 0); err != nil {
			return fmt.Errorf("SUBACK: %w", err)
		}
		go io.Copy(io.Discard, conn) //nolint:errcheck // sink until closed
	}

	frame, err := wire.Encode(&wire.PublishPacket{Topic: topic, Payload: make([]byte, cfg.payload)})
	if err != nil {
		return err
	}

	statsBefore := br.Stats()
	var published atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	pubConns := make([]net.Conn, 0, cfg.publishers)
	for i := 0; i < cfg.publishers; i++ {
		conn, err := handshake(fmt.Sprintf("tpub-%d", i))
		if err != nil {
			return err
		}
		pubConns = append(pubConns, conn)
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			n := int64(0)
			for {
				select {
				case <-stop:
					published.Add(n)
					return
				default:
				}
				if _, err := conn.Write(frame); err != nil {
					published.Add(n)
					return
				}
				n++
			}
		}(conn)
	}

	start := time.Now()
	time.Sleep(cfg.duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	// Let in-flight queue contents drain before the final snapshot.
	time.Sleep(200 * time.Millisecond)
	stats := br.Stats()

	for _, c := range pubConns {
		c.Close()
	}
	for _, c := range subConns {
		c.Close()
	}
	br.Close()
	<-serveDone

	sent := published.Load()
	recv := stats.MessagesReceived - statsBefore.MessagesReceived
	deliv := stats.MessagesDelivered - statsBefore.MessagesDelivered
	drop := stats.MessagesDropped - statsBefore.MessagesDropped
	secs := elapsed.Seconds()
	fmt.Println("THROUGHPUT: loopback TCP broker saturation (QoS0, unpaced)")
	fmt.Printf("publishers=%d subscribers=%d payload=%dB duration=%s\n",
		cfg.publishers, cfg.subscribers, cfg.payload, elapsed.Round(time.Millisecond))
	fmt.Printf("%-12s %12d msgs  %12.0f msgs/sec\n", "sent", sent, float64(sent)/secs)
	fmt.Printf("%-12s %12d msgs  %12.0f msgs/sec\n", "received", recv, float64(recv)/secs)
	fmt.Printf("%-12s %12d msgs  %12.0f msgs/sec\n", "delivered", deliv, float64(deliv)/secs)
	if recv > 0 {
		fmt.Printf("%-12s %12d msgs  (%.1f%% of fan-out)\n", "dropped", drop,
			100*float64(drop)/float64(recv*int64(cfg.subscribers)))
	}
	fmt.Println()
	return nil
}
