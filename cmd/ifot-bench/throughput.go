package main

import (
	"fmt"
	"io"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ifot-middleware/ifot/internal/broker"
	"github.com/ifot-middleware/ifot/internal/wire"
)

// throughputConfig parameterizes the broker TCP saturation run.
type throughputConfig struct {
	publishers  int
	subscribers int
	payload     int
	duration    time.Duration
}

// throughputResult is one saturation run's measured rates.
type throughputResult struct {
	sent      int64
	received  int64
	delivered int64
	dropped   int64
	elapsed   time.Duration
}

// runThroughput drives a real broker over loopback TCP to saturation and
// prints the measured rates. Unlike the go-bench fan-out benchmark (which
// paces publishers to measure sustained no-drop delivery), this mode is
// deliberately unpaced: it answers "what does the broker do when offered
// more load than it can deliver".
func runThroughput(cfg throughputConfig) error {
	r, err := measureThroughput(cfg)
	if err != nil {
		return err
	}
	secs := r.elapsed.Seconds()
	fmt.Println("THROUGHPUT: loopback TCP broker saturation (QoS0, unpaced)")
	fmt.Printf("publishers=%d subscribers=%d payload=%dB duration=%s\n",
		cfg.publishers, cfg.subscribers, cfg.payload, r.elapsed.Round(time.Millisecond))
	fmt.Printf("%-12s %12d msgs  %12.0f msgs/sec\n", "sent", r.sent, float64(r.sent)/secs)
	fmt.Printf("%-12s %12d msgs  %12.0f msgs/sec\n", "received", r.received, float64(r.received)/secs)
	fmt.Printf("%-12s %12d msgs  %12.0f msgs/sec\n", "delivered", r.delivered, float64(r.delivered)/secs)
	if r.received > 0 {
		fmt.Printf("%-12s %12d msgs  (%.1f%% of fan-out)\n", "dropped", r.dropped,
			100*float64(r.dropped)/float64(r.received*int64(cfg.subscribers)))
	}
	fmt.Println()
	return nil
}

// runThroughputSweep repeats the saturation run across a GOMAXPROCS ladder
// (1, 4, all cores — deduplicated and capped at the host's core count) so
// the multicore scaling curve of the lock-free publish path is measured on
// one machine in one command. Each row restores the previous GOMAXPROCS
// before moving on.
func runThroughputSweep(cfg throughputConfig) error {
	maxProcs := runtime.NumCPU()
	ladder := []int{1, 4, maxProcs}
	sort.Ints(ladder)
	procs := ladder[:0]
	for _, p := range ladder {
		if p <= maxProcs && (len(procs) == 0 || procs[len(procs)-1] != p) {
			procs = append(procs, p)
		}
	}

	fmt.Println("THROUGHPUT SWEEP: loopback TCP saturation vs GOMAXPROCS")
	fmt.Printf("publishers=%d subscribers=%d payload=%dB duration/run=%s host-cores=%d\n",
		cfg.publishers, cfg.subscribers, cfg.payload, cfg.duration, maxProcs)
	fmt.Printf("%-10s %14s %14s %14s %10s\n",
		"GOMAXPROCS", "recv msgs/sec", "deliv msgs/sec", "sent msgs/sec", "drop%")
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		r, err := measureThroughput(cfg)
		if err != nil {
			return err
		}
		secs := r.elapsed.Seconds()
		dropPct := 0.0
		if r.received > 0 {
			dropPct = 100 * float64(r.dropped) / float64(r.received*int64(cfg.subscribers))
		}
		fmt.Printf("%-10d %14.0f %14.0f %14.0f %9.1f%%\n", p,
			float64(r.received)/secs, float64(r.delivered)/secs, float64(r.sent)/secs, dropPct)
	}
	fmt.Println()
	return nil
}

// measureThroughput runs one saturation measurement: tpubs raw publishers
// each blast a pre-encoded QoS0 PUBLISH frame at one topic while tsubs
// subscribers drain their connections, and the run reports ingress/egress
// message counts plus queue-overflow drops from the broker's own counters.
func measureThroughput(cfg throughputConfig) (throughputResult, error) {
	var res throughputResult
	br := broker.New(broker.Options{SessionQueueSize: 8192})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = br.Serve(l)
	}()
	addr := l.Addr().String()

	const topic = "bench/throughput"

	handshake := func(id string) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		if err := wire.WritePacket(conn, &wire.ConnectPacket{ClientID: id, CleanSession: true}); err != nil {
			conn.Close()
			return nil, err
		}
		if _, err := wire.ReadPacket(conn, 0); err != nil {
			conn.Close()
			return nil, fmt.Errorf("CONNACK: %w", err)
		}
		return conn, nil
	}

	// Subscribers: wire-level sinks that subscribe once and then drain.
	subConns := make([]net.Conn, 0, cfg.subscribers)
	for i := 0; i < cfg.subscribers; i++ {
		conn, err := handshake(fmt.Sprintf("tsub-%d", i))
		if err != nil {
			return res, err
		}
		subConns = append(subConns, conn)
		sub := &wire.SubscribePacket{
			PacketID:      1,
			Subscriptions: []wire.Subscription{{TopicFilter: topic, QoS: wire.QoS0}},
		}
		if err := wire.WritePacket(conn, sub); err != nil {
			return res, err
		}
		if _, err := wire.ReadPacket(conn, 0); err != nil {
			return res, fmt.Errorf("SUBACK: %w", err)
		}
		go io.Copy(io.Discard, conn) //nolint:errcheck // sink until closed
	}

	frame, err := wire.Encode(&wire.PublishPacket{Topic: topic, Payload: make([]byte, cfg.payload)})
	if err != nil {
		return res, err
	}

	statsBefore := br.Stats()
	var published atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	pubConns := make([]net.Conn, 0, cfg.publishers)
	for i := 0; i < cfg.publishers; i++ {
		conn, err := handshake(fmt.Sprintf("tpub-%d", i))
		if err != nil {
			return res, err
		}
		pubConns = append(pubConns, conn)
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			n := int64(0)
			for {
				select {
				case <-stop:
					published.Add(n)
					return
				default:
				}
				if _, err := conn.Write(frame); err != nil {
					published.Add(n)
					return
				}
				n++
			}
		}(conn)
	}

	start := time.Now()
	time.Sleep(cfg.duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	// Let in-flight queue contents drain before the final snapshot.
	time.Sleep(200 * time.Millisecond)
	stats := br.Stats()

	for _, c := range pubConns {
		c.Close()
	}
	for _, c := range subConns {
		c.Close()
	}
	br.Close()
	<-serveDone

	res.sent = published.Load()
	res.received = stats.MessagesReceived - statsBefore.MessagesReceived
	res.delivered = stats.MessagesDelivered - statsBefore.MessagesDelivered
	res.dropped = stats.MessagesDropped - statsBefore.MessagesDropped
	res.elapsed = elapsed
	return res, nil
}
