package main

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"github.com/ifot-middleware/ifot/internal/broker"
	"github.com/ifot-middleware/ifot/internal/core"
	"github.com/ifot-middleware/ifot/internal/feature"
	"github.com/ifot-middleware/ifot/internal/ml"
	"github.com/ifot-middleware/ifot/internal/mqttclient"
	"github.com/ifot-middleware/ifot/internal/sensor"
	"github.com/ifot-middleware/ifot/internal/telemetry"
	"github.com/ifot-middleware/ifot/internal/wire"
)

// analysisConfig parameterizes the live analysis-path run.
type analysisConfig struct {
	topics   int
	sensors  int
	window   int
	duration time.Duration
}

// analysisBatch builds one joined batch (one sample per sensor stream).
func analysisBatch(sensors int, seq uint32) []sensor.Sample {
	batch := make([]sensor.Sample, sensors)
	for i := range batch {
		batch[i] = sensor.Sample{
			SensorIndex: uint16(i),
			Kind:        sensor.Accelerometer,
			Seq:         seq,
			Timestamp:   time.Unix(1700000000, int64(seq)),
			Values:      [3]float32{float32(i) + 0.5, -float32(i), float32(seq % 7)},
		}
	}
	return batch
}

// runAnalysis drives the neuron-side analysis hot path end to end on the
// real middleware stack: a broker over loopback TCP, an mqttclient whose
// per-subscription lanes run the analysis handler (decode → interned dense
// features → single-pass classify → decision JSON), and a paced publisher
// holding a fixed in-flight window so nothing is dropped — msgs/sec is
// sustained analyzed throughput, the per-message figure behind the paper's
// real-time flow-processing claim.
func runAnalysis(cfg analysisConfig) error {
	br := broker.New(broker.Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = br.Serve(l)
	}()
	addr := l.Addr().String()

	// Warm a PA-I classifier with both labels so BestDense scores real
	// weight vectors.
	clf := ml.NewPassiveAggressive(1)
	for seq := uint32(1); seq <= 64; seq++ {
		batch := analysisBatch(cfg.sensors, seq)
		label := "pos"
		if seq%2 == 0 {
			label = "neg"
			for i := range batch {
				batch[i].Values[0] = -batch[i].Values[0] - 1
			}
		}
		dv := core.BatchDense(batch)
		clf.TrainDense(dv, label)
		feature.PutDense(dv)
	}

	reg := telemetry.NewRegistry()
	subOpts := mqttclient.NewOptions("bench-analysis-sub")
	subOpts.Registry = reg
	subCl, err := mqttclient.Dial(addr, subOpts)
	if err != nil {
		return err
	}
	defer subCl.Close()

	var processed atomic.Int64
	handler := func(m mqttclient.Message) {
		batch, err := core.DecodeBatch(m.Payload)
		if err != nil || len(batch) == 0 {
			return
		}
		dv := core.BatchDense(batch)
		label := ""
		score := 0.0
		if best, err := clf.BestDense(dv); err == nil {
			label, score = best.Label, best.Score
		}
		feature.PutDense(dv)
		d := core.Decision{
			Kind:     "predict",
			Label:    label,
			Score:    score,
			Seq:      batch[0].Seq,
			SensedAt: core.EarliestTimestamp(batch),
		}
		_ = core.EncodeJSON(d)
		processed.Add(1)
	}
	topics := make([]string, cfg.topics)
	for i := range topics {
		topics[i] = fmt.Sprintf("bench/analysis/%d", i)
		if _, err := subCl.Subscribe(topics[i], wire.QoS0, handler); err != nil {
			return err
		}
	}

	pubCl, err := mqttclient.Dial(addr, mqttclient.NewOptions("bench-analysis-pub"))
	if err != nil {
		return err
	}
	defer pubCl.Close()

	payload, err := core.EncodeBatch(analysisBatch(cfg.sensors, 9))
	if err != nil {
		return err
	}

	fmt.Printf("ANALYSIS PATH: broker + %d lanes + dense classify over loopback TCP\n", cfg.topics)
	fmt.Printf("  sensors/batch=%d payload=%dB window=%d duration=%v\n",
		cfg.sensors, len(payload), cfg.window, cfg.duration)

	start := time.Now()
	deadline := start.Add(cfg.duration)
	var published int64
	for time.Now().Before(deadline) {
		for published-processed.Load() > int64(cfg.window) {
			time.Sleep(10 * time.Microsecond)
		}
		if err := pubCl.Publish(topics[published%int64(cfg.topics)], payload, wire.QoS0, false); err != nil {
			return err
		}
		published++
	}
	for processed.Load() < published {
		time.Sleep(50 * time.Microsecond)
	}
	elapsed := time.Since(start)

	stats := br.Stats()
	fmt.Printf("  analyzed   %d msgs in %v  →  %.0f msgs/sec\n",
		processed.Load(), elapsed.Round(time.Millisecond),
		float64(processed.Load())/elapsed.Seconds())
	fmt.Printf("  broker drops: %d\n", stats.MessagesDropped)
	var laneDrops float64
	for _, s := range reg.Samples() {
		if s.Name == "ifot_client_lane_dropped_total" {
			laneDrops += s.Value
		}
	}
	fmt.Printf("  lane drops:   %.0f (LaneBlock policy: must be 0)\n", laneDrops)
	fmt.Println()

	_ = pubCl.Close()
	_ = subCl.Close()
	_ = br.Close()
	_ = l.Close()
	<-serveDone
	return nil
}
