package main

import (
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"github.com/ifot-middleware/ifot/internal/core"
	"github.com/ifot-middleware/ifot/internal/mqttclient"
	"github.com/ifot-middleware/ifot/internal/telemetry"
	"github.com/ifot-middleware/ifot/internal/wire"
)

// runEventTail subscribes ifot/ctrl/events/# on a live broker and
// pretty-prints the cluster event stream — the operator's `tail -f` over
// everything modules, the broker, and the management node export:
//
//	15:04:05.000  WARN   moduleB      wal_torn_tail       segment=3 dropped_bytes=112
//
// A zero duration tails until interrupted.
func runEventTail(addr string, duration time.Duration) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("dial %s: %w", addr, err)
	}
	opts := mqttclient.NewOptions(fmt.Sprintf("bench-events-%d", os.Getpid()))
	client, err := mqttclient.Connect(conn, opts)
	if err != nil {
		_ = conn.Close()
		return fmt.Errorf("connect %s: %w", addr, err)
	}
	defer func() { _ = client.Disconnect() }()

	_, err = client.Subscribe(core.TopicEventsPrefix+"#", wire.QoS0, func(msg mqttclient.Message) {
		batch, err := telemetry.DecodeEventBatch(msg.Payload)
		if err != nil {
			fmt.Printf("?? undecodable batch on %s: %v\n", msg.Topic, err)
			return
		}
		for _, ev := range batch.Events {
			printEvent(batch.Module, ev)
		}
		if batch.Dropped > 0 {
			fmt.Printf("%-12s  ....   %-12s (%d events shed at the source so far)\n",
				"", batch.Module, batch.Dropped)
		}
	})
	if err != nil {
		return fmt.Errorf("subscribe events: %w", err)
	}
	fmt.Printf("tailing %s%s on %s (ctrl-c to stop)\n", core.TopicEventsPrefix, "#", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if duration > 0 {
		select {
		case <-sig:
		case <-time.After(duration):
		}
		return nil
	}
	<-sig
	return nil
}

func printEvent(fallbackModule string, ev telemetry.Event) {
	module := ev.Module
	if module == "" {
		module = fallbackModule
	}
	keys := make([]string, 0, len(ev.Fields))
	for k := range ev.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var fields strings.Builder
	for _, k := range keys {
		if fields.Len() > 0 {
			fields.WriteByte(' ')
		}
		fmt.Fprintf(&fields, "%s=%s", k, ev.Fields[k])
	}
	if ev.TraceKey != nil {
		if fields.Len() > 0 {
			fields.WriteByte(' ')
		}
		fmt.Fprintf(&fields, "flow=%s/%s/%d", ev.TraceKey.Recipe, ev.TraceKey.TaskID, ev.TraceKey.Seq)
	}
	fmt.Printf("%-12s  %-5s  %-12s %-20s %s\n",
		ev.Time.Format("15:04:05.000"),
		strings.ToUpper(string(ev.Severity)),
		module, ev.Kind, fields.String())
}
