package main

import (
	"fmt"
	"math/rand"
	"net"
	"time"

	"github.com/ifot-middleware/ifot/internal/broker"
	"github.com/ifot-middleware/ifot/internal/core"
	"github.com/ifot-middleware/ifot/internal/feature"
	"github.com/ifot-middleware/ifot/internal/ml"
	"github.com/ifot-middleware/ifot/internal/mqttclient"
	"github.com/ifot-middleware/ifot/internal/wire"
)

// mixConfig parameterizes the live MIX weight-exchange run.
type mixConfig struct {
	rounds   int
	features int
}

type mixSample struct {
	v     feature.Vector
	label string
}

func mixStream(n, nFeatures int) []mixSample {
	rng := rand.New(rand.NewSource(42))
	labels := []string{"idle", "walk", "run", "fall"}
	out := make([]mixSample, n)
	for i := range out {
		v := make(feature.Vector, 8)
		sum := 0.0
		for f := 0; f < 8; f++ {
			x := rng.Float64()*2 - 1
			v[fmt.Sprintf("f%d@mean", rng.Intn(nFeatures))] = x
			sum += x
		}
		out[i] = mixSample{v: v, label: labels[(i+int(sum*7))%4&3]}
	}
	return out
}

// runMix drives the MIX weight-exchange path end to end on the real stack:
// a trainer model exports each round, the payload crosses a loopback-TCP
// broker, and a receiving peer decodes and folds it in. The three wire
// strategies are compared on the same training load — the legacy retained
// JSON snapshot, the binary codec carrying full state, and the binary
// delta carrying only the round's updates.
func runMix(cfg mixConfig) error {
	br := broker.New(broker.Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer l.Close()
	go func() { _ = br.Serve(l) }()
	defer br.Close()
	addr := l.Addr().String()

	warmup := mixStream(4000, cfg.features)
	rounds := mixStream(cfg.rounds, cfg.features)
	syms := feature.DefaultSymbols()
	const trainPerRound = 16

	newTrained := func(track bool) *ml.PassiveAggressive {
		m := ml.NewPassiveAggressive(0.1)
		if track {
			m.EnableDeltaTracking()
		}
		for _, s := range warmup {
			m.Train(s.v, s.label)
		}
		return m
	}
	dial := func(id string) (*mqttclient.Client, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return mqttclient.Connect(conn, mqttclient.NewOptions(id))
	}

	fmt.Printf("MIX weight exchange over loopback TCP broker (%d features, %d train/round, %d rounds):\n\n",
		cfg.features, trainPerRound, cfg.rounds)
	fmt.Printf("  %-13s %10s %14s %12s %12s\n", "strategy", "rounds/s", "payload B/rnd", "wire KB/s", "us/round")

	type mode struct {
		name  string
		delta bool // export deltas instead of full state
		json  bool // legacy JSON snapshot
	}
	for _, md := range []mode{
		{name: "json-full", json: true},
		{name: "binary-full"},
		{name: "binary-delta", delta: true},
	} {
		trainer := newTrained(md.delta)
		receiver := ml.NewPassiveAggressive(0.1)
		topic := "bench/mix/" + md.name

		sub, err := dial("mix-sub-" + md.name)
		if err != nil {
			return err
		}
		pub, err := dial("mix-pub-" + md.name)
		if err != nil {
			return err
		}

		done := make(chan struct{}, 1)
		var rxDelta ml.MixDelta
		_, _, err = sub.SubscribeHandle(topic, wire.QoS0, func(msg mqttclient.Message) {
			if md.json {
				var snap core.MixSnapshot
				if err := core.DecodeJSON(msg.Payload, &snap); err == nil {
					receiver.ImportWeights(jsonToWeights(snap.Weights))
				}
			} else {
				if h, err := core.DecodeMix(msg.Payload, syms, &rxDelta); err == nil {
					if h.Keyframe {
						receiver.ImportDense(&rxDelta)
					} else {
						receiver.ApplyDelta(&rxDelta, 0.5)
					}
				}
			}
			done <- struct{}{}
		})
		if err != nil {
			return err
		}

		if md.delta {
			// Bootstrap the receiver once, then steady-state deltas.
			var kf ml.MixDelta
			trainer.ExportDenseInto(&kf)
			receiver.ImportDense(&kf)
			trainer.ExportDeltaInto(&kf) // drain warmup updates
		}

		var (
			enc        []byte
			d          ml.MixDelta
			totalBytes int64
		)
		start := time.Now()
		for i, s := range rounds {
			for k := 0; k < trainPerRound; k++ {
				trainer.Train(s.v, s.label)
			}
			var payload []byte
			switch {
			case md.json:
				payload = core.EncodeJSON(core.MixSnapshot{
					ModuleID: "bench",
					Weights:  weightsToJSON(trainer.ExportWeights()),
					At:       time.Now(),
				})
			case md.delta:
				trainer.ExportDeltaInto(&d)
				h := core.MixHeader{ModuleID: "bench", Round: uint64(i + 1), At: time.Now()}
				enc = core.AppendEncodeMix(enc[:0], h, &d, syms)
				payload = enc
			default:
				trainer.ExportDenseInto(&d)
				h := core.MixHeader{ModuleID: "bench", Round: uint64(i + 1), Keyframe: true, At: time.Now()}
				enc = core.AppendEncodeMix(enc[:0], h, &d, syms)
				payload = enc
			}
			totalBytes += int64(len(payload))
			if err := pub.Publish(topic, payload, wire.QoS0, false); err != nil {
				return err
			}
			<-done // receiver decoded and imported: round complete
		}
		elapsed := time.Since(start)

		perRound := elapsed / time.Duration(cfg.rounds)
		fmt.Printf("  %-13s %10.0f %14.0f %12.0f %12.1f\n",
			md.name,
			float64(cfg.rounds)/elapsed.Seconds(),
			float64(totalBytes)/float64(cfg.rounds),
			float64(totalBytes)/1024/elapsed.Seconds(),
			float64(perRound.Nanoseconds())/1e3,
		)
		sub.Close()
		pub.Close()
	}
	fmt.Println("\nbinary-delta ships only the weights each round touched; the")
	fmt.Println("retained keyframe cadence (ifot-neuron -mix-keyframe) bounds joiner catch-up.")
	return nil
}

func weightsToJSON(w map[string]feature.Vector) map[string]map[string]float64 {
	out := make(map[string]map[string]float64, len(w))
	for label, vec := range w {
		m := make(map[string]float64, len(vec))
		for k, v := range vec {
			m[k] = v
		}
		out[label] = m
	}
	return out
}

func jsonToWeights(w map[string]map[string]float64) map[string]feature.Vector {
	out := make(map[string]feature.Vector, len(w))
	for label, m := range w {
		vec := make(feature.Vector, len(m))
		for k, v := range m {
			vec[k] = v
		}
		out[label] = vec
	}
	return out
}
