// Command ifot-neuron runs one IFoT neuron module: it connects to the
// flow-distribution broker, announces its sensors/actuators and capacity,
// and executes subtasks assigned by the management node.
//
// Usage:
//
//	ifot-neuron -id moduleA -broker localhost:1883 \
//	    -sensor acc1:accelerometer:20 -sensor lux1:illuminance:5 \
//	    -actuator light -capacity 1000
//
// Sensor specs are name:kind:rateHz where kind is one of accelerometer,
// illuminance, sound, motion, temperature, humidity. Virtual sensors emit
// synthetic waveforms (the reproduction's stand-in for physical hardware).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/ifot-middleware/ifot/internal/core"
	"github.com/ifot-middleware/ifot/internal/sensor"
	"github.com/ifot-middleware/ifot/internal/store"
	"github.com/ifot-middleware/ifot/internal/telemetry"
)

type stringsFlag []string

func (s *stringsFlag) String() string { return strings.Join(*s, ",") }

func (s *stringsFlag) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ifot-neuron:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id        = flag.String("id", "", "module identity (required)")
		brokerStr = flag.String("broker", "localhost:1883", "broker address")
		capacity  = flag.Float64("capacity", 1000, "advertised processing capacity (ops/s)")
		verbose   = flag.Bool("v", false, "log middleware events")
		telAddr   = flag.String("telemetry", "", "HTTP address serving /metrics, /traces, /flows, /events and /debug/pprof (empty = off)")
		sysEvery  = flag.Duration("sys-stats", 0, "publish module metrics retained under $SYS/modules/<id>/ at this interval (0 = off)")
		traceCap  = flag.Int("trace-capacity", telemetry.DefaultTraceCapacity, "spans retained in the tracer ring buffer")
		traceExp  = flag.Duration("trace-export", time.Second, "interval for publishing completed spans on ifot/ctrl/trace/<id> (0 = no export)")
		traceBuf  = flag.Int("trace-export-buffer", telemetry.DefaultSpanExportBuffer, "spans buffered between trace exports (overflow dropped+counted)")
		traceSmp  = flag.Uint("trace-sample", 32, "trace one flow in every N (1 = every flow)")
		dataDir   = flag.String("data-dir", "", "directory for the model-checkpoint WAL (empty = in-memory only)")
		ckptEvery = flag.Duration("checkpoint-interval", 30*time.Second, "interval between ML model checkpoints (needs -data-dir or -ckpt-handoff)")
		ckptHand  = flag.Bool("ckpt-handoff", false, "publish model checkpoints as retained broker blobs so a failover target resumes warm")
		fenceAft  = flag.Duration("fence-after", 0, "self-fence task outputs after this long without a broker announce ack (0 = off)")
		drainTmo  = flag.Duration("drain-timeout", 0, "on SIGTERM, ask the manager to move tasks off and wait up to this long before closing (0 = immediate close)")
		mixKeyfr  = flag.Int("mix-keyframe", 0, "publish a retained full-state MIX keyframe every N rounds (0 = default cadence, 1 = every round)")
		mixStale  = flag.Duration("mix-stale-after", 0, "evict MIX peers silent for longer than this (0 = 3x the mix interval)")
		mixJSON   = flag.Bool("mix-json", false, "publish MIX weights as legacy retained JSON snapshots instead of binary deltas (mixed-version clusters)")
		eventCap  = flag.Int("event-capacity", telemetry.DefaultEventCapacity, "structured events retained for the local /events endpoint")
		eventExp  = flag.Duration("event-export", time.Second, "interval for publishing events on ifot/ctrl/events/<id> (0 = no export)")
		sensors   stringsFlag
		actuators stringsFlag
		caps      stringsFlag
	)
	flag.Var(&sensors, "sensor", "virtual sensor spec name:kind:rateHz (repeatable)")
	flag.Var(&actuators, "actuator", "virtual actuator name (repeatable)")
	flag.Var(&caps, "capability", "extra advertised capability (repeatable)")
	flag.Parse()
	if *id == "" {
		return fmt.Errorf("-id is required")
	}

	cfg := core.Config{
		ID:           *id,
		CapacityOps:  *capacity,
		Capabilities: caps,
		Dial: func() (net.Conn, error) {
			return net.Dial("tcp", *brokerStr)
		},
		MixKeyframeEvery:  *mixKeyfr,
		MixStaleAfter:     *mixStale,
		MixJSON:           *mixJSON,
		CheckpointHandoff: *ckptHand,
		FenceAfter:        *fenceAft,
	}
	if *ckptHand {
		cfg.CheckpointInterval = *ckptEvery
	}
	// Create the event log up front and share it with the store, so WAL
	// recovery events emitted during store.Open (before the module
	// exists) ride the module's ring and export stream. The export queue
	// must be armed before store.Open, or recovery events skip it.
	cfg.Events = telemetry.NewEventLog(*eventCap)
	cfg.EventExportInterval = *eventExp
	if *eventExp > 0 {
		cfg.Events.SetExportBuffer(0)
	}
	if *telAddr != "" || *sysEvery > 0 {
		cfg.Telemetry = telemetry.NewRegistry()
		cfg.Tracer = telemetry.NewTracer(nil, *traceCap)
		// Expose the tracer's per-stage latency SLO quantiles
		// (p50/p95/p99/max) as gauges on /metrics and $SYS.
		cfg.Tracer.BindRegistry(cfg.Telemetry, "")
		cfg.TraceExportInterval = *traceExp
		cfg.TraceExportBuffer = *traceBuf
		cfg.TraceSampleEvery = uint32(*traceSmp)
	}
	if *telAddr != "" {
		bound, shutdown, err := telemetry.StartServer(*telAddr, cfg.Telemetry, cfg.Tracer, cfg.Events)
		if err != nil {
			return err
		}
		defer func() { _ = shutdown(context.Background()) }()
		log.Printf("telemetry on http://%s/metrics", bound)
	}
	if *dataDir != "" {
		st, err := store.Open(*dataDir, store.Options{
			Name:     "neuron",
			Registry: cfg.Telemetry,
			Events:   cfg.Events,
		})
		if err != nil {
			return fmt.Errorf("open data dir %s: %w", *dataDir, err)
		}
		defer st.Close()
		cfg.Store = st
		cfg.CheckpointInterval = *ckptEvery
	}
	if *verbose {
		cfg.Logger = log.New(os.Stderr, "", log.LstdFlags|log.Lmicroseconds)
		cfg.Observer = core.Observer{
			OnTrain: func(ev core.TrainEvent) {
				log.Printf("trained %s/%s seq=%d examples=%d latency=%v",
					ev.Recipe, ev.TaskID, ev.Seq, ev.Examples, ev.At.Sub(ev.SensedAt))
			},
			OnDecision: func(d core.Decision) {
				log.Printf("decision %s/%s %s label=%q score=%.3f latency=%v",
					d.Recipe, d.TaskID, d.Kind, d.Label, d.Score, d.At.Sub(d.SensedAt))
			},
		}
	}
	m := core.NewModule(cfg)

	var sensorIndex uint16
	for _, spec := range sensors {
		s, err := parseSensor(spec, sensorIndex)
		if err != nil {
			return err
		}
		sensorIndex++
		m.RegisterSensor(s)
	}
	for _, name := range actuators {
		m.RegisterActuator(sensor.NewVirtualActuator(name))
	}

	if err := m.Start(); err != nil {
		return err
	}
	log.Printf("neuron %s connected to %s (%d sensors, %d actuators)",
		*id, *brokerStr, len(sensors), len(actuators))

	if *sysEvery > 0 {
		// Mirror this module's metrics into the broker's $SYS tree so
		// fleet state is inspectable with any MQTT client.
		exp := telemetry.NewMQTTExporter("$SYS/modules/"+*id+"/", cfg.Telemetry,
			func(topic string, payload []byte, retain bool) {
				if retain {
					_ = m.PublishRetained(topic, payload)
				} else {
					_ = m.Publish(topic, payload)
				}
			})
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(*sysEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					exp.PublishOnce()
				case <-stop:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if *drainTmo > 0 {
		log.Printf("draining (up to %v)", *drainTmo)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTmo)
		err := m.Drain(ctx)
		cancel()
		if err != nil {
			log.Printf("drain: %v", err)
		} else {
			log.Println("drained")
		}
	}
	log.Println("shutting down")
	return m.Close()
}

func parseSensor(spec string, index uint16) (*sensor.Sensor, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 && len(parts) != 4 {
		return nil, fmt.Errorf("sensor spec %q: want name:kind:rateHz[:trace.csv]", spec)
	}
	kind, err := parseKind(parts[1])
	if err != nil {
		return nil, err
	}
	rate, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || rate <= 0 {
		return nil, fmt.Errorf("sensor spec %q: bad rate %q", spec, parts[2])
	}
	var gen sensor.Generator
	if len(parts) == 4 {
		data, err := os.ReadFile(parts[3])
		if err != nil {
			return nil, fmt.Errorf("sensor spec %q: %w", spec, err)
		}
		values, err := sensor.LoadTraceCSV(data)
		if err != nil {
			return nil, fmt.Errorf("sensor spec %q: %w", spec, err)
		}
		gen = sensor.Trace(values)
	} else {
		gen = generatorFor(kind, index)
	}
	return &sensor.Sensor{
		ID:     parts[0],
		Index:  index,
		Kind:   kind,
		RateHz: rate,
		Gen:    gen,
	}, nil
}

func parseKind(name string) (sensor.Type, error) {
	switch strings.ToLower(name) {
	case "accelerometer", "acc":
		return sensor.Accelerometer, nil
	case "illuminance", "lux":
		return sensor.Illuminance, nil
	case "sound", "mic":
		return sensor.Sound, nil
	case "motion", "pir":
		return sensor.Motion, nil
	case "temperature", "temp":
		return sensor.Temperature, nil
	case "humidity":
		return sensor.Humidity, nil
	default:
		return 0, fmt.Errorf("unknown sensor kind %q", name)
	}
}

// generatorFor picks a plausible synthetic waveform per modality.
func generatorFor(kind sensor.Type, seed uint16) sensor.Generator {
	s := uint64(seed) + 1
	switch kind {
	case sensor.Accelerometer:
		return sensor.GaussianNoise(0, 1, s)
	case sensor.Illuminance:
		return sensor.RandomWalk(400, 20, 0, 1000, s)
	case sensor.Sound:
		return sensor.GaussianNoise(40, 8, s)
	case sensor.Motion:
		return sensor.SpikeInjector(sensor.Constant(0, 0, 0), 17, 1)
	case sensor.Temperature:
		return sensor.RandomWalk(22, 0.1, 10, 35, s)
	case sensor.Humidity:
		return sensor.RandomWalk(50, 0.5, 20, 90, s)
	default:
		return sensor.Constant(0, 0, 0)
	}
}
