// Command ifot-broker runs the IFoT flow-distribution broker: an MQTT 3.1.1
// server (the role Mosquitto played in the paper's prototype).
//
// Usage:
//
//	ifot-broker [-addr :1883] [-max-qos 1] [-telemetry :9090] [-data-dir /var/lib/ifot] [-v]
//
// With -data-dir set, retained messages, persistent sessions, and queued
// QoS 1 messages are journaled to a write-ahead log in that directory and
// recovered on restart.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/ifot-middleware/ifot/internal/bridge"
	"github.com/ifot-middleware/ifot/internal/broker"
	"github.com/ifot-middleware/ifot/internal/core"
	"github.com/ifot-middleware/ifot/internal/store"
	"github.com/ifot-middleware/ifot/internal/telemetry"
	"github.com/ifot-middleware/ifot/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ifot-broker:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":1883", "TCP listen address")
		maxQoS    = flag.Int("max-qos", 1, "maximum QoS granted to subscriptions (0 or 1)")
		verbose   = flag.Bool("v", false, "log connection events")
		telAddr   = flag.String("telemetry", "", "HTTP address serving /metrics and /debug/pprof (empty = off)")
		stats     = flag.Duration("stats", 0, "print broker stats at this interval (0 = off)")
		bridgeTo  = flag.String("bridge", "", "remote broker address to bridge with")
		dataDir   = flag.String("data-dir", "", "directory for the durability WAL (empty = in-memory only)")
		syncDelay = flag.Duration("wal-sync-delay", 5*time.Millisecond, "group-commit fsync window for the WAL")
		eventCap  = flag.Int("event-capacity", telemetry.DefaultEventCapacity, "structured events retained for the local /events endpoint")
		eventExp  = flag.Duration("event-export", time.Second, "interval for publishing events on ifot/ctrl/events/ifot-broker (0 = no export)")
		bridgeOut stringsFlag
		bridgeIn  stringsFlag
	)
	flag.Var(&bridgeOut, "bridge-out", "topic filter forwarded to the remote broker (repeatable)")
	flag.Var(&bridgeIn, "bridge-in", "topic filter pulled from the remote broker (repeatable)")
	flag.Parse()

	const brokerID = "ifot-broker"
	opts := broker.Options{MaxQoS: wire.QoS(*maxQoS)}
	if *verbose {
		opts.Logger = log.New(os.Stderr, "", log.LstdFlags|log.Lmicroseconds)
	}
	if *telAddr != "" {
		opts.Registry = telemetry.NewRegistry()
	}
	// One event log shared between the store and the broker, so WAL
	// recovery events from store.Open and persistence-degradation events
	// land in the same ring and export stream.
	events := telemetry.NewEventLog(*eventCap)
	if *eventExp > 0 {
		events.SetExportBuffer(0)
	}
	events.BindRegistry(opts.Registry, telemetry.L("module", brokerID))
	opts.Events = events
	if *dataDir != "" {
		st, err := store.Open(*dataDir, store.Options{
			Name:      "broker",
			SyncDelay: *syncDelay,
			Registry:  opts.Registry,
			Logger:    opts.Logger,
			Events:    events,
		})
		if err != nil {
			return fmt.Errorf("open data dir %s: %w", *dataDir, err)
		}
		defer st.Close()
		opts.Store = st
	}
	b, err := broker.Open(opts)
	if err != nil {
		return fmt.Errorf("recover broker state: %w", err)
	}
	if st, ok := opts.Store.(*store.FileStore); ok {
		log.Printf("durability on: %s (recovered in %s)", *dataDir, st.RecoveryDuration())
	}
	if *telAddr != "" {
		bound, shutdown, err := telemetry.StartServer(*telAddr, opts.Registry, nil, events)
		if err != nil {
			return err
		}
		defer func() { _ = shutdown(context.Background()) }()
		log.Printf("telemetry on http://%s/metrics", bound)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("ifot-broker listening on %s (max QoS %d)", l.Addr(), *maxQoS)

	if *eventExp > 0 {
		// The broker injects its own event batches directly into the
		// routing path (no client loopback needed), so a management node
		// or `ifot-bench -events` tail sees broker-side events too.
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(*eventExp)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					evs := events.Drain()
					if len(evs) == 0 {
						continue
					}
					batch := telemetry.EventBatch{
						Module:  brokerID,
						SentAt:  time.Now(),
						Dropped: events.Dropped(),
						Events:  evs,
					}
					if payload, err := telemetry.EncodeEventBatch(batch); err == nil {
						b.Publish(core.TopicEventsPrefix+brokerID, payload, wire.QoS0, false)
					}
				case <-stop:
					return
				}
			}
		}()
	}

	if *stats > 0 {
		// Publish Mosquitto-style $SYS/broker/# statistics and log them.
		stop := make(chan struct{})
		defer close(stop)
		b.PublishSysStats(*stats, stop)
		go func() {
			for range time.Tick(*stats) {
				s := b.Stats()
				log.Printf("stats: clients=%d sessions=%d subs=%d retained=%d in=%d out=%d dropped=%d",
					s.ConnectedClients, s.Sessions, s.Subscriptions, s.RetainedMessages,
					s.MessagesReceived, s.MessagesDelivered, s.MessagesDropped)
			}
		}()
	}

	if *bridgeTo != "" {
		routes := make([]bridge.Route, 0, len(bridgeOut)+len(bridgeIn))
		for _, f := range bridgeOut {
			routes = append(routes, bridge.Route{Filter: f, Direction: bridge.Out, QoS: wire.QoS1})
		}
		for _, f := range bridgeIn {
			routes = append(routes, bridge.Route{Filter: f, Direction: bridge.In, QoS: wire.QoS1})
		}
		localAddr := l.Addr().String()
		remoteAddr := *bridgeTo
		br, err := bridge.NewBridge(bridge.Config{
			Name:       "bridge-" + localAddr,
			DialLocal:  func() (net.Conn, error) { return net.Dial("tcp", localAddr) },
			DialRemote: func() (net.Conn, error) { return net.Dial("tcp", remoteAddr) },
			Routes:     routes,
		})
		if err != nil {
			return err
		}
		defer br.Close()
		log.Printf("bridging with %s (%d routes)", remoteAddr, len(routes))
	}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Println("shutting down")
		_ = b.Close()
	}()

	if err := b.Serve(l); err != nil && err != broker.ErrClosed {
		return err
	}
	return nil
}

type stringsFlag []string

func (s *stringsFlag) String() string { return fmt.Sprint([]string(*s)) }

func (s *stringsFlag) Set(v string) error {
	*s = append(*s, v)
	return nil
}
