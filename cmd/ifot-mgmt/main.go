// Command ifot-mgmt is the IFoT management node CLI (the role the
// OpenRTM-based management software played in the paper's testbed,
// Fig. 7/8): it lists modules, deploys and undeploys recipes, and queries
// the stream registry.
//
// Usage:
//
//	ifot-mgmt [-broker localhost:1883] modules
//	ifot-mgmt deploy recipe.json
//	ifot-mgmt undeploy <recipe-name> deploy recipe.json   (commands chain)
//	ifot-mgmt streams
//	ifot-mgmt watch 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"github.com/ifot-middleware/ifot/internal/core"
	"github.com/ifot-middleware/ifot/internal/recipe"
	"github.com/ifot-middleware/ifot/internal/store"
	"github.com/ifot-middleware/ifot/internal/tasks"
	"github.com/ifot-middleware/ifot/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ifot-mgmt:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		brokerStr = flag.String("broker", "localhost:1883", "broker address")
		strategy  = flag.String("strategy", "least-loaded", "task assignment strategy (least-loaded|round-robin|runtime-aware)")
		failover  = flag.Bool("failover-on-dead", true, "fail tasks over when the health monitor declares their module dead (not just on clean leave)")
		settle    = flag.Duration("settle", 2*time.Second, "time to wait for module announcements")
		telAddr   = flag.String("telemetry", "", "HTTP address serving /metrics, /traces, /flows, /events, /health and /debug/pprof (empty = off)")
		traceCap  = flag.Int("trace-capacity", core.DefaultCollectorFlows, "cross-module flows retained by the trace collector")
		dataDir   = flag.String("data-dir", "", "directory for the deployment journal (empty = in-memory only); a restarted manager resumes supervising journaled deployments")
		eventCap  = flag.Int("event-capacity", telemetry.DefaultEventCapacity, "structured events retained (manager's own plus the ingested cluster view)")
		eventExp  = flag.Duration("event-export", 0, "interval publishing the manager's own events on ifot/ctrl/events/<id> (0 = local /events only)")
		sloTarget = flag.Duration("slo-target", 0, "per-stage latency objective armed as a wildcard SLO burn-rate alert (0 = off)")
		sloQ      = flag.Float64("slo-quantile", 0.95, "objective quantile for -slo-target")
		sloBurn   = flag.Float64("slo-burn", telemetry.DefaultSLOBurnThreshold, "burn-rate multiple that trips the SLO alert")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		return fmt.Errorf("usage: ifot-mgmt [flags] <modules|streams|deploy FILE|undeploy NAME|watch DUR>")
	}

	strat, err := tasks.NewStrategy(*strategy)
	if err != nil {
		return err
	}
	mcfg := core.ManagerConfig{
		Strategy:            strat,
		Dial:                func() (net.Conn, error) { return net.Dial("tcp", *brokerStr) },
		Logger:              log.New(os.Stderr, "", log.LstdFlags),
		DisableDeadFailover: !*failover,
	}
	mcfg.TraceFlowCapacity = *traceCap
	mcfg.EventCapacity = *eventCap
	mcfg.EventExportInterval = *eventExp
	if *sloTarget > 0 {
		mcfg.SLO = telemetry.SLOConfig{
			Targets:       []telemetry.SLOTarget{{Stage: "*", Quantile: *sloQ, Target: *sloTarget}},
			BurnThreshold: *sloBurn,
		}
	}
	if *telAddr != "" {
		mcfg.Telemetry = telemetry.NewRegistry()
	}
	if *dataDir != "" {
		st, err := store.Open(*dataDir, store.Options{
			Name:     "mgmt",
			Registry: mcfg.Telemetry,
			Logger:   mcfg.Logger,
		})
		if err != nil {
			return fmt.Errorf("open data dir %s: %w", *dataDir, err)
		}
		defer st.Close()
		mcfg.Store = st
	}
	mgr := core.NewManager(mcfg)
	if *telAddr != "" {
		// The collector serves /traces (cluster-wide assembled flows) and
		// /flows (per-stage latency SLO digest) alongside /metrics; the
		// event log and health monitor add /events and /health.
		bound, shutdown, err := telemetry.StartServer(*telAddr, mcfg.Telemetry, mgr.Collector(),
			mgr.Events(), mgr.Health())
		if err != nil {
			return err
		}
		defer func() { _ = shutdown(context.Background()) }()
		log.Printf("telemetry on http://%s/metrics", bound)
	}
	if err := mgr.Start(); err != nil {
		return err
	}
	defer mgr.Close()

	// Modules announce on a heartbeat; give them a moment to show up.
	time.Sleep(*settle)

	args := flag.Args()
	for len(args) > 0 {
		cmd := args[0]
		args = args[1:]
		switch cmd {
		case "modules":
			printModules(mgr)
		case "streams":
			printStreams(mgr)
		case "deploy":
			if len(args) == 0 {
				return fmt.Errorf("deploy: missing recipe file")
			}
			if err := deploy(mgr, args[0]); err != nil {
				return err
			}
			args = args[1:]
		case "undeploy":
			if len(args) == 0 {
				return fmt.Errorf("undeploy: missing recipe name")
			}
			if err := mgr.Undeploy(args[0]); err != nil {
				return err
			}
			fmt.Printf("undeployed %s\n", args[0])
			args = args[1:]
		case "watch":
			if len(args) == 0 {
				return fmt.Errorf("watch: missing duration")
			}
			d, err := time.ParseDuration(args[0])
			if err != nil {
				return fmt.Errorf("watch: %w", err)
			}
			watch(mgr, d)
			args = args[1:]
		default:
			return fmt.Errorf("unknown command %q", cmd)
		}
	}
	return nil
}

func printModules(mgr *core.Manager) {
	mods := mgr.Modules()
	fmt.Printf("%-12s %-10s %-8s %s\n", "MODULE", "CAPACITY", "TASKS", "CAPABILITIES")
	for _, m := range mods {
		fmt.Printf("%-12s %-10.0f %-8d %s\n",
			m.ModuleID, m.CapacityOps, len(m.RunningTasks), strings.Join(m.Capabilities, ","))
	}
	if len(mods) == 0 {
		fmt.Println("(no modules announced)")
	}
}

func printStreams(mgr *core.Manager) {
	streams := mgr.Streams()
	fmt.Printf("%-24s %-16s %-12s %-10s %s\n", "TOPIC", "RECIPE", "TASK", "KIND", "MODULE")
	for _, s := range streams {
		fmt.Printf("%-24s %-16s %-12s %-10s %s\n", s.Topic, s.Recipe, s.TaskID, s.Kind, s.ModuleID)
	}
	if len(streams) == 0 {
		fmt.Println("(no streams registered)")
	}
}

func deploy(mgr *core.Manager, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rec, err := recipe.Unmarshal(data)
	if err != nil {
		return err
	}
	dep, err := mgr.Deploy(rec)
	if err != nil {
		return err
	}
	fmt.Printf("deploying %s (%d subtasks):\n", rec.Name, len(dep.SubTasks))
	for _, s := range dep.SubTasks {
		fmt.Printf("  %-28s -> %s\n", s.Name(), dep.Assignment[s.Name()])
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := dep.WaitRunning(ctx); err != nil {
		return fmt.Errorf("waiting for start: %w (pending: %v)", err, dep.PendingTasks())
	}
	fmt.Println("all subtasks running")
	return nil
}

func watch(mgr *core.Manager, d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		printModules(mgr)
		fmt.Println()
		time.Sleep(2 * time.Second)
	}
}
